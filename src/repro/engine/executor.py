"""A parallel batch executor for manifests of independent queries.

A *manifest* is JSON-lines, one task per line::

    {"id": "q1", "op": "volume", "formula": "0 <= y AND y <= x AND x <= 1"}
    {"id": "q2", "op": "approx", "formula": "...", "epsilon": 0.02}
    {"id": "q3", "op": "decide", "formula": "EXISTS x . x*x = 2 AND 0 < x"}

Supported ops: ``volume`` (exact, or budget-governed robust evaluation
when a fallback policy is set), ``approx`` (Monte Carlo), and ``decide``
(CAD decision of an FO + POLY sentence).  Optional per-task fields:
``variables`` (evaluation order), ``box`` (per-variable ``[low, high]``
rational bounds), ``epsilon`` / ``delta`` (approximation targets).

Execution contract:

* **isolation** — every task runs under its own :class:`~repro.guard.Budget`
  built from the batch-level caps; one ``BudgetExceeded`` (or any query
  error) becomes that task's result record and never poisons the batch;
* **determinism** — task *i* samples from a per-task seed derived from
  the batch ``--seed`` via ``numpy.random.SeedSequence([seed, i])``, so
  results are independent of worker count and scheduling order;
* **parallelism** — ``workers > 1`` fans tasks out to a
  ``concurrent.futures`` process pool (QE/CAD are CPU-bound, so threads
  would serialize on the GIL); each worker process keeps its own warm
  plan cache across the tasks it serves, and ``workers <= 1`` runs
  serially in-process against the shared cache;
* **plan sharing** — with ``plan_store=PATH`` every process routes
  in-memory cache misses through one cross-process
  :class:`~repro.engine.store.PlanStore` (SQLite, read-through /
  write-back): each distinct content hash is compiled at most once
  *batch-wide*, prewarmed stores skip compilation entirely, and
  ``compile_only=True`` populates the store without evaluating anything
  (the ``repro batch --compile-only`` prewarming mode).  Each result
  gains a deterministic ``"cache"`` provenance dict (see
  :func:`_attach_cache_provenance`), and the batch's store traffic is
  folded once into the parent's ``engine.store.*`` metrics;
* **fault tolerance** — a dead worker (segfault, OOM kill, chaos
  injection) breaks only its pool, not the batch: the executor detects
  ``BrokenProcessPool``, attributes the crash to the in-flight task via a
  per-task liveness handshake (marker files written at task start /
  finish), rebuilds the pool after an exponential backoff with jitter,
  and re-dispatches only the unfinished tasks.  Retries are governed by a
  per-task :class:`~repro.guard.Budget` retry budget (``max_retries``); a
  task that keeps killing pools is *quarantined* with a structured
  ``"status": "quarantined"`` record (optionally answered by the
  in-process MC ladder when a fallback policy is set) and the batch
  continues.  With ``journal=PATH`` every completed task is durably
  appended to a ``repro.engine.journal/v1`` file and ``resume=True``
  replays it, re-running only the remainder — byte-identical to an
  uninterrupted run (see :mod:`repro.engine.journal`).  All of it is
  deterministically testable via :mod:`repro.engine.chaos`;
* **observability** — the batch runs inside an ``engine.batch`` span and
  reports ``engine.batch.*`` counters in the parent process.  With
  ``collect_obs=True`` each task additionally runs under its own trace
  and registry delta (:mod:`repro.obs.aggregate`): the worker serializes
  a compact snapshot into the task's result record (``"obs"`` key), and
  the parent deterministically merges counters, histograms, and the
  task-correlated span forest — so worker-process telemetry survives the
  pool instead of dying with it.  Observed tasks compile with a private
  plan cache: a shared warm cache would make counters depend on which
  worker a task landed on, and the merge is only meaningful if the same
  manifest + seed always yields the same totals.

Results come back in manifest order, one JSON-able dict per task.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import tempfile
import time
import traceback as _traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from fractions import Fraction
from typing import Any, Iterable, Mapping

from .. import guard, obs
from .._errors import ReproError
from ..guard.budget import Budget
from ..guard.errors import BudgetExceeded, RetryBudgetExceeded
from ..obs.histogram import Histogram
from .chaos import ChaosPlan, parse_chaos
from .journal import Journal, open_journal
from .prepared import prepare
from .store import PlanStore, StoreBackedCache

__all__ = [
    "OPS", "task_seed", "task_key", "normalize_task", "execute_task",
    "worker_entry", "cache_outcome", "run_batch", "batch_trace_ctx",
]

#: Operations a manifest task may request.
OPS = ("volume", "approx", "decide")


def task_seed(base_seed: int, index: int) -> int:
    """The deterministic seed of task *index* in a batch seeded *base_seed*."""
    import numpy as np

    return int(np.random.SeedSequence([base_seed, index]).generate_state(1)[0])


def batch_trace_ctx(base_seed: int, index: int) -> dict[str, Any]:
    """The deterministic trace context of batch task *index*.

    Batch trace ids are *derived*, not random: per-task telemetry
    snapshots must be identical across worker counts and across
    serve-vs-batch replays of the same manifest row, and the snapshot
    records which trace the task ran under.  Hashing (seed, index) gives
    every task a stable W3C-shaped identity for free — same manifest +
    seed, same ids, any scheduling.
    """
    import hashlib

    digest = hashlib.sha256(
        f"repro.batch:{base_seed}:{index}".encode()
    ).hexdigest()
    return {"trace_id": digest[:32], "span_id": digest[32:48]}


def task_key(task: Mapping[str, Any]) -> str | None:
    """The content hash :func:`prepare` will key *task*'s plan under.

    Computed by canonicalization alone — no QE, CAD, or decomposition —
    so it is cheap enough to call for every task of a manifest.  ``None``
    when the formula does not parse (such a task errors at execution and
    never touches a cache).  Used to seed shard runs with the keys of
    skipped prefix tasks, keeping cache provenance shard-invariant.
    """
    from ..logic.parser import parse
    from .canon import canonical_formula, content_hash

    try:
        canonical = canonical_formula(parse(task["formula"]))
    except Exception:  # noqa: BLE001 - an unkeyable task never hits a cache
        return None
    if task.get("op") == "decide":
        return content_hash(canonical, (), "decide")
    variables = task.get("variables")
    if variables is None:
        variables = tuple(sorted(canonical.free_variables()))
    return content_hash(canonical, tuple(variables), "volume")


def _as_fraction(value: Any) -> Fraction:
    """Exact rational from a manifest number (floats go via repr: 0.1 -> 1/10)."""
    if isinstance(value, float):
        return Fraction(str(value))
    return Fraction(value)


def normalize_task(raw: Mapping[str, Any], index: int) -> dict[str, Any]:
    """Validate one manifest entry and fill defaults; raises ReproError."""
    if not isinstance(raw, Mapping):
        raise ReproError(f"task {index}: manifest line must be a JSON object")
    formula = raw.get("formula")
    if not isinstance(formula, str) or not formula.strip():
        raise ReproError(f"task {index}: missing 'formula' string")
    op = raw.get("op", "volume")
    if op not in OPS:
        raise ReproError(f"task {index}: unknown op {op!r}; one of {OPS}")
    task: dict[str, Any] = {
        "id": raw.get("id", index),
        "index": index,
        "op": op,
        "formula": formula,
    }
    if raw.get("variables") is not None:
        task["variables"] = tuple(str(v) for v in raw["variables"])
    if raw.get("box") is not None:
        try:
            task["box"] = [
                (_as_fraction(low), _as_fraction(high)) for low, high in raw["box"]
            ]
        except (TypeError, ValueError) as error:
            raise ReproError(f"task {index}: bad box: {error}") from error
    for name in ("epsilon", "delta"):
        if raw.get(name) is not None:
            task[name] = float(raw[name])
    return task


def execute_task(
    task: Mapping[str, Any],
    *,
    seed: int,
    timeout: float | None = None,
    max_cells: int | None = None,
    fallback: str = "off",
    epsilon: float = 0.05,
    delta: float = 0.05,
    collect_obs: bool = False,
    plan_store: str | None = None,
    compile_only: bool = False,
    obs_shared_cache: bool = False,
    trace_ctx: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one normalized task; always returns a result record, never raises.

    ``seed`` is the already-derived per-task seed (see :func:`task_seed`).
    ``collect_obs=True`` runs the task under its own trace/registry and
    attaches the serialized telemetry snapshot under the result's
    ``"obs"`` key (see :mod:`repro.obs.aggregate`).  ``plan_store`` names
    a shared :class:`~repro.engine.store.PlanStore` file to compile
    through (one adapter per process, reused across tasks);
    ``compile_only=True`` prepares the plan and skips evaluation.
    ``obs_shared_cache=True`` lets an observed task use the shared cache
    and store anyway: batch telemetry must be scheduling-independent, so
    it compiles privately, but a long-running server wants live (not
    byte-stable) telemetry *and* warm plans — it opts in.
    ``trace_ctx`` (a :class:`~repro.obs.trace.TraceContext` dict) threads
    a request/batch-task identity into the observed trace: the snapshot
    records it, and histogram observations carry it as exemplars.  It is
    only meaningful with ``collect_obs=True``.
    """
    result: dict[str, Any] = {"id": task["id"], "op": task["op"], "seed": seed}
    start = time.perf_counter()
    budget = (
        Budget(deadline_s=timeout, max_cells=max_cells)
        if timeout is not None or max_cells is not None
        else None
    )
    store = _store_adapter(plan_store) if plan_store else None
    private_compile = collect_obs and not obs_shared_cache
    if collect_obs:
        from ..obs.aggregate import task_observation

        with task_observation(trace_ctx=trace_ctx) as observation:
            _run_task(result, task, seed, budget, fallback, epsilon, delta,
                      private_compile, store, compile_only)
        result["obs"] = observation.snapshot
    else:
        _run_task(result, task, seed, budget, fallback, epsilon, delta,
                  private_compile, store, compile_only)
    result["elapsed_s"] = round(time.perf_counter() - start, 6)
    return result


def _run_task(
    result: dict[str, Any],
    task: Mapping[str, Any],
    seed: int,
    budget: Budget | None,
    fallback: str,
    epsilon: float,
    delta: float,
    private_compile: bool,
    store: "StoreBackedCache | None" = None,
    compile_only: bool = False,
) -> None:
    """The error-isolating dispatch body shared by both collection modes."""
    try:
        result.update(
            _dispatch(task, seed, budget, fallback, epsilon, delta,
                      private_compile, store, compile_only)
        )
        result["status"] = "ok"
    except BudgetExceeded as error:
        result.update(
            status="budget-exceeded",
            resource=error.resource,
            error=str(error),
        )
    except ReproError as error:
        result.update(status="error", error=str(error))
    except Exception as error:  # noqa: BLE001 - one task must not kill a batch
        # Unexpected failures keep their class name and a truncated
        # traceback: shard outputs get merged far from the run that
        # produced them, and "error": "KeyError: 'x'" alone makes
        # postmortems guesswork.
        result.update(
            status="error",
            error=f"{type(error).__name__}: {error}",
            error_type=type(error).__name__,
            traceback=_truncated_traceback(error),
        )


#: Caps for the traceback preserved in an error record (see _run_task).
_TRACEBACK_LINES = 12
_TRACEBACK_CHARS = 2000


def _truncated_traceback(error: BaseException) -> str:
    """The *tail* of the traceback, bounded so records stay small.

    The innermost frames (where it actually blew up) matter most for a
    postmortem, so truncation drops the outer frames first.
    """
    lines = _traceback.format_exception(type(error), error, error.__traceback__)
    text = "".join(lines[-_TRACEBACK_LINES:]).rstrip()
    if len(text) > _TRACEBACK_CHARS:
        text = "..." + text[-_TRACEBACK_CHARS:]
    return text


def _rng(seed: int):
    import numpy as np

    return np.random.default_rng(seed)


def _dispatch(
    task: Mapping[str, Any],
    seed: int,
    budget: Budget | None,
    fallback: str,
    epsilon: float,
    delta: float,
    private_compile: bool = False,
    store: "StoreBackedCache | None" = None,
    compile_only: bool = False,
) -> dict[str, Any]:
    op = task["op"]
    variables = task.get("variables")
    box = task.get("box")
    epsilon = task.get("epsilon", epsilon)
    delta = task.get("delta", delta)
    # Batch-observed tasks compile privately: shared-cache (and
    # shared-store) hits depend on worker scheduling, and per-task batch
    # telemetry must not (see module docstring and obs_shared_cache).
    cache: dict[str, Any] = (
        {"cache": None} if private_compile
        else {"cache": store} if store is not None
        else {}
    )

    if op == "decide":
        plan = prepare(task["formula"], (), kind="decide", budget=budget,
                       **cache)
        if compile_only:
            return {"cached_key": plan.key, "cells": plan.cell_count(),
                    "mode": "compile-only"}
        return {"value": plan.decide(), "mode": "exact", "cached_key": plan.key}

    try:
        plan = prepare(task["formula"], variables, budget=budget, **cache)
    except BudgetExceeded as error:
        if compile_only or op != "volume" or fallback == "off":
            raise
        # Compilation itself exhausted the budget.  Degrade the same way
        # guard.robust_volume does: a quantifier-free matrix can still be
        # sampled; a query whose QE alone blows the budget raises again.
        from ..guard.fallback import robust_volume as cold_robust
        from ..logic.parser import parse

        result = cold_robust(
            parse(task["formula"]), variables,
            epsilon=epsilon, delta=delta, budget=budget,
            policy="approx-only", box=box, rng=_rng(seed),
        )
        return {
            "value": float(result.value),
            "mode": result.mode,
            "confidence_radius": result.confidence_radius,
            "samples": result.samples,
            "epsilon": epsilon,
            "delta": delta,
            "attempts": [["exact", error.resource]],
        }
    out: dict[str, Any] = {"cached_key": plan.key, "cells": plan.cell_count()}
    if compile_only:
        out["mode"] = "compile-only"
        return out

    if op == "approx":
        estimate = plan.approx_volume(epsilon, delta, rng=_rng(seed), box=box)
        out.update(
            value=estimate.estimate,
            mode="approximate",
            confidence_radius=estimate.confidence_radius,
            samples=estimate.samples,
            epsilon=epsilon,
            delta=delta,
        )
        return out

    # op == "volume"
    if fallback == "off":
        if budget is not None:
            budget.reset_consumed()
        with guard.govern(budget):
            value = plan.volume(box)
        out.update(value=float(value), exact=str(value), mode="exact")
        return out
    result = plan.robust_volume(
        epsilon=epsilon, delta=delta, budget=budget, policy=fallback,
        box=box, rng=_rng(seed),
    )
    out.update(value=float(result.value), mode=result.mode)
    if result.mode == "approximate":
        out.update(
            confidence_radius=result.confidence_radius,
            samples=result.samples,
            epsilon=epsilon,
            delta=delta,
        )
    else:
        out["exact"] = str(result.value)
    if result.attempts:
        out["attempts"] = [
            [mode, error.resource] for mode, error in result.attempts
        ]
    return out


#: One store adapter per ``(path, pid)``: the SQLite connection must not
#: cross a fork, and the in-memory side of the adapter is the worker's
#: warm cache, so it must persist across the tasks the worker serves.
_ADAPTERS: dict[tuple[str, int], StoreBackedCache] = {}


def _store_adapter(path: str) -> StoreBackedCache:
    """This process's read-through adapter for the store at *path*."""
    key = (str(path), os.getpid())
    adapter = _ADAPTERS.get(key)
    if adapter is None:
        for stale in [k for k in _ADAPTERS if k[1] != key[1]]:
            del _ADAPTERS[stale]  # fork-inherited connections are unsafe
        adapter = StoreBackedCache(PlanStore(str(path)))
        _ADAPTERS[key] = adapter
    return adapter


def worker_entry(
    payload: tuple[dict[str, Any], dict[str, Any]]
) -> dict[str, Any]:
    """Process-pool entry point (top level so it pickles).

    The payload is ``(normalized_task, config)`` where *config* holds
    :func:`execute_task` keyword arguments plus the optional batch-only
    keys ``liveness_dir`` and ``chaos``.  This is the one worker-side
    entry shared by every front-end — the batch executor submits it with
    the liveness handshake armed, and :mod:`repro.serve` dispatches it
    from the event loop with neither batch extra — so worker-process
    state (the per-pid plan-store adapter, warm in-memory caches) is
    reused identically whichever front-end drives the pool.

    Besides running the task, the worker keeps the liveness handshake the
    parent's crash attribution relies on: it writes ``<index>.live``
    (containing its pid) into the batch's marker directory before the
    task body starts, and renames it to ``<index>.done`` after.  A task
    whose ``.live`` marker exists without a ``.done`` when the pool
    breaks was in flight in the dead worker — the crash suspect.
    """
    task, config = payload
    config = dict(config)
    liveness_dir = config.pop("liveness_dir", None)
    action = config.pop("chaos", None)
    live = done = None
    if liveness_dir is not None:
        index = task.get("index", 0)
        live = os.path.join(liveness_dir, f"{index}.live")
        done = os.path.join(liveness_dir, f"{index}.done")
        try:
            with open(live, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
        except OSError:  # markers are advisory; the task still runs
            live = None
    if action is not None:
        from .chaos import apply_action

        apply_action(action)
    result = execute_task(task, **config)
    if live is not None:
        try:
            os.replace(live, done)
        except OSError:
            pass
    return result


def run_batch(
    tasks: Iterable[Mapping[str, Any]],
    *,
    workers: int = 1,
    seed: int = 0,
    timeout: float | None = None,
    max_cells: int | None = None,
    fallback: str = "off",
    epsilon: float = 0.05,
    delta: float = 0.05,
    collect_obs: bool = False,
    plan_store: str | None = None,
    compile_only: bool = False,
    seen_keys: Iterable[str] = (),
    max_retries: int = 2,
    retry_backoff_s: float = 0.05,
    hang_timeout_s: float | None = None,
    chaos: "ChaosPlan | str | None" = None,
    journal: str | None = None,
    resume: bool = False,
) -> list[dict[str, Any]]:
    """Run every task in *tasks*; returns result records in manifest order.

    Batch-level caps (``timeout``, ``max_cells``) apply **per task**: each
    task gets a fresh budget, so a pathological query exhausts its own
    budget and the rest of the batch proceeds.

    ``collect_obs=True`` harvests each task's telemetry (its result gains
    an ``"obs"`` snapshot) and merges it into this process: counters and
    histograms fold into the ambient registry when counting is on, and
    task span forests (roots tagged ``task=i``) graft into the active
    trace when tracing is on.  The merge applies snapshots in manifest
    order, so totals are identical for any worker count.

    ``plan_store`` routes every process's plan-cache misses through one
    shared SQLite :class:`~repro.engine.store.PlanStore` file (created on
    first use), so a content hash is compiled at most once batch-wide;
    ``compile_only=True`` prepares (and publishes) every task's plan
    without evaluating it — the prewarming mode.  The batch's store
    traffic (hits, misses, publishes, races, fetch latencies) is read
    back from the store's cross-process stats and folded once into this
    process's ``engine.store.*`` metrics.

    ``seen_keys`` pre-seeds the deterministic cache provenance (see
    :func:`_attach_cache_provenance`) with content hashes treated as
    already compiled — the CLI passes the skipped prefix of a sharded
    manifest (via :func:`task_key`), so shard outputs concatenate to the
    unsharded run's output exactly.

    Fault tolerance (see the module docstring): ``max_retries`` caps the
    transient-failure retries per task before quarantine;
    ``retry_backoff_s`` is the base of the exponential backoff slept
    before a broken pool is rebuilt (0 disables the sleep);
    ``hang_timeout_s`` arms a watchdog that SIGKILLs a worker whose task
    has been in flight longer than the timeout (off by default — arm it
    only above the worst-case single-task runtime); ``chaos`` injects
    deterministic worker faults (a :class:`~repro.engine.chaos.ChaosPlan`
    or its spec string); ``journal`` appends completed task records to a
    ``repro.engine.journal/v1`` file and ``resume=True`` replays it,
    skipping finished tasks.
    """
    normalized = [
        task if "index" in task else normalize_task(task, index)
        for index, task in enumerate(tasks)
    ]
    if isinstance(chaos, str):
        chaos = parse_chaos(chaos)
    if resume and journal is None:
        raise ReproError("resume=True requires a journal path")
    config = {
        "timeout": timeout,
        "max_cells": max_cells,
        "fallback": fallback,
        "epsilon": epsilon,
        "delta": delta,
        "collect_obs": collect_obs,
        "plan_store": plan_store,
        "compile_only": compile_only,
    }
    store = PlanStore(str(plan_store)) if plan_store else None
    try:
        prewarmed = frozenset(store.keys()) if store is not None else frozenset()
        stats_before = store.stats_snapshot() if store is not None else None
        hist_before = store.fetch_hist_snapshot() if store is not None else None
        journal_writer: Journal | None = None
        replayed: dict[int, dict[str, Any]] = {}
        if journal is not None:
            # The fingerprint covers everything that changes task records;
            # worker count and paths are excluded on purpose.
            journal_writer, replay = open_journal(
                journal, normalized, seed,
                config={k: config[k] for k in (
                    "timeout", "max_cells", "fallback", "epsilon", "delta",
                    "collect_obs", "compile_only",
                )},
                resume=resume, prewarmed=sorted(prewarmed),
            )
            replayed = replay.results
            if replay.prewarmed is not None:
                # Provenance must reflect the *original* run's pre-batch
                # store contents, not the plans the interrupted run left
                # behind (see repro.engine.journal).
                prewarmed = frozenset(replay.prewarmed)
        obs.add("engine.batch.runs")
        obs.add("engine.batch.tasks", len(normalized))
        start = time.perf_counter()
        try:
            with obs.span("engine.batch", tasks=len(normalized), workers=workers):
                runner = _BatchRunner(
                    config=config, seed=seed, max_retries=max_retries,
                    retry_backoff_s=retry_backoff_s,
                    hang_timeout_s=hang_timeout_s, chaos=chaos,
                    journal=journal_writer, fallback=fallback,
                    epsilon=epsilon, delta=delta,
                )
                pending = [t for t in normalized if t["index"] not in replayed]
                fresh = runner.run(pending, workers)
        finally:
            if journal_writer is not None:
                journal_writer.close()
        by_index = dict(replayed)
        by_index.update(fresh)
        results = [by_index[task["index"]] for task in normalized]
        wall = time.perf_counter() - start
        obs.set_gauge("engine.batch.wall_s", round(wall, 6))
        for record in results:
            status = record.get("status")
            if status == "ok":
                obs.add("engine.batch.ok")
            elif status == "budget-exceeded":
                obs.add("engine.batch.budget_exceeded")
            elif status == "quarantined":
                obs.add("engine.batch.quarantined")
            else:
                obs.add("engine.batch.errors")
        _attach_cache_provenance(results, prewarmed, seen_keys)
        if store is not None:
            _fold_store_delta(store, stats_before, hist_before)
    finally:
        if store is not None:
            store.close()
    if collect_obs:
        _merge_harvest(results)
    return results


class _BatchRunner:
    """One batch run's fault-tolerant dispatch state.

    Serial runs (no pool needed, no disruptive chaos) execute in-process
    exactly as before.  Pooled runs dispatch via ``submit`` and collect
    completions incrementally, so a broken pool loses only the in-flight
    tasks; the liveness markers written by :func:`worker_entry` attribute the
    crash.  A single suspect is charged against its retry budget directly;
    when several tasks were in flight in the dead pool, each suspect is
    re-run in its own single-worker *probe* pool — innocents complete
    unharmed, and a poison task keeps breaking (now unambiguously solo)
    pools until its retry budget trips and it is quarantined.
    """

    #: seconds between liveness/hang scans while futures are in flight.
    _POLL_S = 0.05
    #: cap on the exponential backoff, in units of ``retry_backoff_s``.
    _BACKOFF_CAP = 32
    #: consecutive suspect-less, progress-less pool breaks before giving up.
    _MAX_BARREN_BREAKS = 3

    def __init__(
        self,
        *,
        config: dict[str, Any],
        seed: int,
        max_retries: int,
        retry_backoff_s: float,
        hang_timeout_s: float | None,
        chaos: ChaosPlan | None,
        journal: Journal | None,
        fallback: str,
        epsilon: float,
        delta: float,
    ):
        self.config = config
        self.seed = seed
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.hang_timeout_s = hang_timeout_s
        self.chaos = chaos
        self.journal = journal
        self.fallback = fallback
        self.epsilon = epsilon
        self.delta = delta
        self.results: dict[int, dict[str, Any]] = {}
        self.by_index: dict[int, dict[str, Any]] = {}
        self.retry_budgets: dict[int, Budget] = {}
        self.completed = 0
        self.pool_breaks = 0
        self.barren_breaks = 0
        self.liveness_dir: str | None = None
        # Jitter affects only sleep lengths, never results; seeding it from
        # the batch seed keeps even the timing reproducible in tests.
        self._jitter = random.Random(seed)

    # -- entry point -------------------------------------------------------
    def run(
        self, tasks: list[dict[str, Any]], workers: int
    ) -> dict[int, dict[str, Any]]:
        if not tasks:
            return self.results
        self.by_index = {task["index"]: task for task in tasks}
        indices = sorted(self.by_index)
        disruptive = (self.chaos is not None and self.chaos.disruptive())
        # Disruptive chaos (and the hang watchdog) need process isolation
        # even at workers=1: an in-process SIGKILL would take the batch
        # down, so such runs are promoted to a pool of one.
        if (workers <= 1 or len(indices) <= 1) and not disruptive \
                and self.hang_timeout_s is None:
            self._run_serial(indices)
            return self.results
        self.liveness_dir = tempfile.mkdtemp(prefix="repro-batch-")
        try:
            self._run_pooled(indices, max(1, workers))
        finally:
            shutil.rmtree(self.liveness_dir, ignore_errors=True)
            self.liveness_dir = None
        return self.results

    # -- serial path -------------------------------------------------------
    def _task_config(self, index: int) -> dict[str, Any]:
        """Per-task :func:`execute_task` kwargs (seed, caps, trace identity).

        Observed tasks get the deterministic :func:`batch_trace_ctx` —
        identical for the serial and pooled paths, so per-task telemetry
        (which records its trace) stays scheduling-independent.
        """
        config = {"seed": task_seed(self.seed, index), **self.config}
        if config.get("collect_obs"):
            config["trace_ctx"] = batch_trace_ctx(self.seed, index)
        return config

    def _run_serial(self, indices: list[int]) -> None:
        for index in indices:
            task = self.by_index[index]
            result = execute_task(task, **self._task_config(index))
            self._record(index, result)

    # -- pooled path -------------------------------------------------------
    def _run_pooled(self, indices: list[int], workers: int) -> None:
        queue = [i for i in indices if i not in self.results]
        while queue:
            queue = self._pool_round(queue, workers)

    def _pool_round(self, queue: list[int], workers: int) -> list[int]:
        """Run one pool until it finishes the queue or breaks.

        Returns the indices to re-dispatch in the next round (empty when
        the pool drained the queue).
        """
        broken = False
        futures: dict[Future, int] = {}
        shot_pids: set[int] = set()
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            try:
                for index in queue:
                    self._clear_markers(index)
                    task_config = {
                        **self._task_config(index),
                        "liveness_dir": self.liveness_dir,
                    }
                    action = (
                        self.chaos.take(index) if self.chaos is not None else None
                    )
                    if action is not None:
                        task_config["chaos"] = action
                    futures[pool.submit(
                        worker_entry, (dict(self.by_index[index]), task_config)
                    )] = index
            except BrokenExecutor:
                broken = True
            pending = set(futures)
            progressed = False
            while pending and not broken:
                done, pending = wait(
                    pending, timeout=self._POLL_S, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index = futures[future]
                    try:
                        result = future.result()
                    except (BrokenExecutor, CancelledError, OSError):
                        broken = True
                    else:
                        self._record(index, result)
                        progressed = True
                if not broken and pending and self.hang_timeout_s is not None:
                    self._shoot_hung_workers(futures, pending, shot_pids)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if not broken:
            return []
        return self._recover(queue, progressed)

    def _recover(self, queue: list[int], progressed: bool) -> list[int]:
        """Attribute a pool break and decide what to re-dispatch."""
        self.pool_breaks += 1
        obs.add("engine.pool.rebuilds")
        unresolved = [i for i in queue if i not in self.results]
        suspects = [
            i for i in unresolved
            if self._marker_exists(i, "live") and not self._marker_exists(i, "done")
        ]
        innocents = [i for i in unresolved if i not in suspects]
        if not suspects and not progressed:
            # The pool died with nothing attributable in flight, and nothing
            # completed either: the environment (not a task) is killing
            # workers.  Retrying forever would spin; give the batch up.
            self.barren_breaks += 1
            if self.barren_breaks >= self._MAX_BARREN_BREAKS:
                raise ReproError(
                    f"batch executor: worker pool broke "
                    f"{self.barren_breaks} consecutive times with no task "
                    "in flight and no progress; giving up"
                )
        else:
            self.barren_breaks = 0
        self._backoff()
        requeue = list(innocents)
        if len(suspects) == 1:
            # Unambiguous: the dead worker was running exactly this task.
            if self._charge_retry(suspects[0]):
                requeue.append(suspects[0])
        elif suspects:
            # Ambiguous: several tasks were in flight when the pool died.
            # Blaming them all would let collateral victims burn retries
            # toward quarantine, so each suspect is probed alone in a
            # single-worker pool: innocents complete, the poison task
            # breaks its solo pool and is charged unambiguously.
            for index in sorted(suspects):
                self._run_pooled([index], 1)
        return sorted(requeue)

    def _charge_retry(self, index: int) -> bool:
        """Charge one retry; quarantines and returns False when exhausted."""
        budget = self.retry_budgets.setdefault(
            index, Budget(max_retries=self.max_retries)
        )
        try:
            budget.charge("retries")
        except RetryBudgetExceeded:
            self._quarantine(index, budget)
            return False
        obs.add("engine.retry.attempts")
        return True

    def _quarantine(self, index: int, budget: Budget) -> None:
        """Record a poison task; optionally answer it via the MC ladder."""
        obs.add("engine.retry.exhausted")
        obs.add("engine.quarantine.tasks")
        task = self.by_index[index]
        attempts = budget.retries
        seed = task_seed(self.seed, index)
        result: dict[str, Any] = {
            "id": task["id"],
            "op": task["op"],
            "seed": seed,
            "status": "quarantined",
            "error": (
                f"worker died on {attempts} consecutive attempts "
                f"(max_retries={self.max_retries}); task quarantined"
            ),
            "quarantine": {
                "reason": "worker-death",
                "attempts": attempts,
                "max_retries": self.max_retries,
            },
        }
        if self.fallback != "off" and task["op"] in ("volume", "approx"):
            self._quarantine_fallback(task, seed, result)
        self._record(index, result)

    def _quarantine_fallback(
        self, task: dict[str, Any], seed: int, result: dict[str, Any]
    ) -> None:
        """Best-effort in-process MC answer for a quarantined volume task.

        Runs in the *parent* under a tight budget — the task already
        killed workers, so this is opt-in (a fallback policy must be set)
        and sampling-only: no QE/CAD compile paths, which is where
        runaway tasks live.  The record stays ``"quarantined"`` either
        way; a successful fallback adds the estimate fields.
        """
        from ..guard.fallback import robust_volume as cold_robust
        from ..logic.parser import parse

        timeout = self.config.get("timeout")
        deadline = min(5.0, timeout) if timeout is not None else 5.0
        budget = Budget(
            deadline_s=deadline, max_cells=self.config.get("max_cells")
        )
        epsilon = task.get("epsilon", self.epsilon)
        delta = task.get("delta", self.delta)
        try:
            estimate = cold_robust(
                parse(task["formula"]), task.get("variables"),
                epsilon=epsilon, delta=delta, budget=budget,
                policy="approx-only", box=task.get("box"), rng=_rng(seed),
            )
        except Exception as error:  # noqa: BLE001 - fallback is best-effort
            result["quarantine"]["fallback_error"] = (
                f"{type(error).__name__}: {error}"
            )
            return
        result.update(
            value=float(estimate.value),
            mode=estimate.mode,
            confidence_radius=estimate.confidence_radius,
            samples=estimate.samples,
            epsilon=epsilon,
            delta=delta,
        )
        result["quarantine"]["fallback"] = "in-process"
        obs.add("engine.quarantine.fallbacks")

    # -- bookkeeping -------------------------------------------------------
    def _record(self, index: int, result: dict[str, Any]) -> None:
        self.results[index] = result
        if self.journal is not None:
            self.journal.record(index, result)
        self.completed += 1
        if (self.chaos is not None
                and self.chaos.abort_after is not None
                and self.completed >= self.chaos.abort_after):
            from .chaos import ChaosAbort

            raise ChaosAbort(
                f"chaos: run aborted after {self.completed} completed tasks"
            )

    def _backoff(self) -> None:
        """Exponential backoff with jitter before rebuilding a pool."""
        if self.retry_backoff_s <= 0:
            return
        scale = min(2 ** (self.pool_breaks - 1), self._BACKOFF_CAP)
        delay = self.retry_backoff_s * scale * (0.5 + self._jitter.random())
        obs.observe_value("engine.retry.backoff_s", delay)
        time.sleep(delay)

    def _marker(self, index: int, kind: str) -> str:
        assert self.liveness_dir is not None
        return os.path.join(self.liveness_dir, f"{index}.{kind}")

    def _marker_exists(self, index: int, kind: str) -> bool:
        return os.path.exists(self._marker(index, kind))

    def _clear_markers(self, index: int) -> None:
        for kind in ("live", "done"):
            try:
                os.unlink(self._marker(index, kind))
            except OSError:
                pass

    def _shoot_hung_workers(
        self,
        futures: Mapping[Future, int],
        pending: Iterable[Future],
        shot_pids: set[int],
    ) -> None:
        """SIGKILL workers whose in-flight task outlived ``hang_timeout_s``.

        The kill breaks the pool, which routes the hung task through the
        normal crash-suspect path (charge, retry, eventually quarantine).
        """
        now = time.time()
        for future in pending:
            index = futures[future]
            marker = self._marker(index, "live")
            try:
                status = os.stat(marker)
                pid_text = open(marker, "r", encoding="utf-8").read().strip()
                pid = int(pid_text)
            except (OSError, ValueError):
                continue
            if now - status.st_mtime <= self.hang_timeout_s or pid in shot_pids:
                continue
            shot_pids.add(pid)
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                continue
            obs.add("engine.pool.hang_kills")


def _attach_cache_provenance(
    results: list[dict[str, Any]],
    prewarmed: frozenset[str],
    seen_keys: Iterable[str] = (),
) -> None:
    """Attach a deterministic ``"cache"`` provenance dict to each result.

    The provenance is *semantic*, computed by the parent from the manifest
    structure and the pre-batch store contents — what a serial run against
    a cold in-memory cache would observe — rather than from the racy
    hit/miss events real workers saw (those depend on which worker a task
    landed on, and result records must not).  Per task with a compiled
    plan: the first occurrence of a content hash is a ``store_hits`` (key
    already published before the batch) or a ``misses`` (compiled by this
    batch); later occurrences are in-memory ``hits``.  Being a function
    of (manifest, store contents) alone, it is identical for any worker
    count and for observed (``collect_obs``) runs, whose tasks really
    compile privately.  The aggregate cross-process traffic the workers
    actually generated lives in the ``engine.store.*`` metrics instead.

    ``seen_keys`` are hashes to treat as already-compiled occurrences
    (the skipped prefix of a sharded manifest), so a shard's provenance
    matches the same tasks' provenance in the unsharded run.
    """
    seen: set[str] = set(seen_keys)
    for result in results:
        key = result.get("cached_key")
        if key is None:
            continue
        result["cache"] = cache_outcome(key, prewarmed, seen)


def cache_outcome(
    key: str, prewarmed: frozenset[str] | set[str], seen: set[str]
) -> dict[str, int]:
    """The one-hot cache-provenance dict for one occurrence of *key*.

    Mirrors the batch rule (see :func:`_attach_cache_provenance`): a key
    already in *seen* is an in-memory ``hits``; a first occurrence is a
    ``store_hits`` when the store held it before the run started, else a
    ``misses``.  *seen* is updated in place, so callers that process
    occurrences in order — the batch executor in manifest order, the
    serving front-end in admission order — accumulate the same provenance
    a single sequential run would.
    """
    if key in seen:
        outcome = "hits"
    elif key in prewarmed:
        outcome = "store_hits"
    else:
        outcome = "misses"
    seen.add(key)
    return {"hits": 0, "misses": 0, "store_hits": 0, outcome: 1}


#: ``stats`` table name -> obs counter it feeds (see obs/metrics.py).
_STORE_COUNTERS = {
    "hits": "engine.store.hit",
    "misses": "engine.store.miss",
    "publishes": "engine.store.publish",
    "compiles": "engine.store.compile",
    "races": "engine.store.race",
    "stale_claims": "engine.store.stale_claims",
}


def _fold_store_delta(
    store: PlanStore,
    stats_before: dict[str, int],
    hist_before: dict[str, Any],
) -> tuple[dict[str, int], dict[str, Any]]:
    """Fold the batch's store traffic into this process's registry, once.

    Worker registries die with the pool, so the store's own SQLite stats
    are the one surviving record of cross-process traffic; the parent
    computes the before/after delta and applies it exactly once (counters
    add; the fetch-latency histogram merges bucket-exactly, with min/max
    conservatively taken from the store's lifetime extremes).  Returns
    the *after* snapshots so incremental callers (the serving front-end
    folds on every ``/metrics`` scrape) can chain the next delta from
    them.
    """
    stats_after = store.stats_snapshot()
    for name, metric in _STORE_COUNTERS.items():
        delta = stats_after[name] - stats_before[name]
        if delta:
            obs.add(metric, delta)
    obs.set_gauge("engine.store.plans", len(store))
    hist_after = store.fetch_hist_snapshot()
    if obs.counting_enabled():
        delta_hist = _hist_delta(hist_before, hist_after)
        if delta_hist.count:
            obs.REGISTRY.histogram(
                "engine.store.fetch_s",
                "Shared-plan-store fetch latency (seconds)",
            ).merge(delta_hist)
    return stats_after, hist_after


def _hist_delta(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> Histogram:
    """The bucket-exact difference of two fetch-histogram snapshots."""
    hist = Histogram("engine.store.fetch_s")
    hist.count = int(after.get("count", 0)) - int(before.get("count", 0))
    hist.sum = float(after.get("sum", 0.0)) - float(before.get("sum", 0.0))
    before_buckets = before.get("buckets") or {}
    for index, n in (after.get("buckets") or {}).items():
        delta = int(n) - int(before_buckets.get(index, 0))
        if delta:
            hist.buckets[int(index)] = delta
    if hist.count > 0:
        hist.min = None if after.get("min") is None else float(after["min"])
        hist.max = None if after.get("max") is None else float(after["max"])
    return hist


def _merge_harvest(results: list[dict[str, Any]]) -> None:
    """Fold worker snapshots into the parent's registry and trace.

    In serial runs the snapshots were *removed* from the ambient registry
    by ``task_observation``, so re-applying them here is exact (not a
    double count); in parallel runs the worker registries died with the
    pool and this is the only copy.  Either way the parent ends up with
    the same totals, applied in manifest order.
    """
    from ..obs.aggregate import merge_snapshot_into, snapshot_spans

    counting = obs.counting_enabled()
    trace = obs.current_trace()
    for index, record in enumerate(results):
        snapshot = record.get("obs")
        if not snapshot:
            continue
        if counting:
            merge_snapshot_into(obs.REGISTRY, snapshot)
        if trace is not None:
            for root in snapshot_spans(snapshot, index):
                trace.adopt(root)
