"""An append-only journal of completed batch tasks, for checkpoint/resume.

A long batch run that dies — machine reboot, OOM kill, operator Ctrl-C —
should not re-evaluate the tasks it already finished.  The executor can
journal every completed task record to an append-only JSONL file, schema
``repro.engine.journal/v1``, and a resumed run (``repro batch --journal
PATH --resume``) replays the journal, skips the finished tasks, and runs
only the remainder.  The contract is byte-identity: the resumed run's
output must concatenate to exactly what the uninterrupted run would have
produced (up to the wall-clock ``elapsed_s`` field of result records, the
same convention sharding uses — see docs/ENGINE.md).

Two design points make that identity hold:

* **fingerprinting** — the header line records a SHA-256 over the
  normalized tasks, the batch seed, and the evaluation config.  A resume
  against a journal written for a different manifest, seed, or config is
  refused instead of silently mixing incompatible results.
* **pre-provenance records** — task records are journaled *before* the
  per-task ``"cache"`` provenance is attached, and the header records the
  plan-store keys that existed when the original run started
  (``prewarmed``).  Provenance is a deterministic function of (manifest
  order, pre-run store keys), so the resumed run recomputes it over the
  merged results using the *original* prewarmed set — even though the
  store meanwhile contains every plan the interrupted run compiled.

Durability: every record is flushed and fsynced before the executor moves
on, so the journal never claims a task that was not fully recorded.  A
crash can still tear the final line; the reader tolerates (and counts)
truncated or malformed trailing data instead of refusing the file.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterable, Mapping

from .. import obs
from .._errors import ReproError

__all__ = [
    "JOURNAL_SCHEMA", "Journal", "JournalReplay", "manifest_fingerprint",
    "open_journal", "read_journal",
]

#: Schema tag carried by every journal line.
JOURNAL_SCHEMA = "repro.engine.journal/v1"


def manifest_fingerprint(
    tasks: Iterable[Mapping[str, Any]],
    seed: int,
    config: Mapping[str, Any] | None = None,
) -> str:
    """SHA-256 identifying (normalized tasks, seed, evaluation config).

    Covers everything that changes what a task's journaled record would
    contain: the task content (id, op, formula, variables, box, per-task
    epsilon/delta), the batch seed (per-task seeds derive from it), and
    the batch-level evaluation config (timeout, fallback policy, ...).
    Worker count and journal/plan-store paths are deliberately excluded —
    results are independent of both.
    """
    material: list[Any] = [int(seed), dict(config or {})]
    for task in tasks:
        entry: dict[str, Any] = {
            "id": task["id"],
            "index": task["index"],
            "op": task["op"],
            "formula": task["formula"],
        }
        if task.get("variables") is not None:
            entry["variables"] = [str(v) for v in task["variables"]]
        if task.get("box") is not None:
            entry["box"] = [[str(low), str(high)] for low, high in task["box"]]
        for name in ("epsilon", "delta"):
            if task.get(name) is not None:
                entry[name] = float(task[name])
        material.append(entry)
    payload = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class JournalReplay:
    """What :func:`read_journal` recovered from an existing journal."""

    __slots__ = ("results", "prewarmed", "truncated")

    def __init__(
        self,
        results: dict[int, dict[str, Any]] | None = None,
        prewarmed: list[str] | None = None,
        truncated: int = 0,
    ):
        #: task index -> journaled (pre-provenance) result record.
        self.results = results if results is not None else {}
        #: plan-store keys recorded at the *original* run's start, or
        #: ``None`` when the journal has no readable header.
        self.prewarmed = prewarmed
        #: count of torn/malformed lines skipped (typically a crash-torn tail).
        self.truncated = truncated


def read_journal(path: str, fingerprint: str) -> JournalReplay:
    """Replay the journal at *path*, validating it against *fingerprint*.

    Raises :class:`ReproError` when the journal belongs to a different
    (manifest, seed, config).  Blank, torn, and malformed lines are
    skipped and counted (``engine.journal.truncated``) — an fsync happens
    per record, so at most the final line can be torn, but the reader
    stays tolerant of arbitrary damage rather than wedging a resume.
    """
    replay = JournalReplay()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                replay.truncated += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("schema") != JOURNAL_SCHEMA):
                replay.truncated += 1
                continue
            kind = record.get("kind")
            if kind == "header":
                if record.get("fingerprint") != fingerprint:
                    raise ReproError(
                        f"{path}: journal was written for a different "
                        "manifest, seed, or config; refusing to resume "
                        "(delete the journal to start over)"
                    )
                # First header wins: resumed runs append their own header
                # repeating the original prewarmed set.
                if replay.prewarmed is None and record.get("prewarmed") is not None:
                    replay.prewarmed = [str(k) for k in record["prewarmed"]]
            elif kind == "task":
                index = record.get("index")
                result = record.get("result")
                if isinstance(index, int) and isinstance(result, dict):
                    replay.results[index] = result
                else:
                    replay.truncated += 1
            else:
                replay.truncated += 1
    if replay.truncated:
        obs.add("engine.journal.truncated", replay.truncated)
    return replay


class Journal:
    """Append-only writer; one fsynced JSONL line per completed task."""

    def __init__(self, path: str, *, append: bool = False):
        self.path = str(path)
        self._handle = open(self.path, "a" if append else "w", encoding="utf-8")

    def _write(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write_header(
        self,
        fingerprint: str,
        *,
        tasks: int,
        seed: int,
        prewarmed: Iterable[str] = (),
    ) -> None:
        self._write({
            "schema": JOURNAL_SCHEMA,
            "kind": "header",
            "fingerprint": fingerprint,
            "tasks": tasks,
            "seed": seed,
            "prewarmed": sorted(prewarmed),
        })

    def record(self, index: int, result: Mapping[str, Any]) -> None:
        """Durably record the completion of task *index*."""
        self._write({
            "schema": JOURNAL_SCHEMA,
            "kind": "task",
            "index": index,
            "result": dict(result),
        })
        obs.add("engine.journal.records")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def open_journal(
    path: str,
    tasks: Iterable[Mapping[str, Any]],
    seed: int,
    *,
    config: Mapping[str, Any] | None = None,
    resume: bool = False,
    prewarmed: Iterable[str] = (),
) -> tuple[Journal, JournalReplay]:
    """Open (and on resume, replay) the journal for a batch run.

    Fresh runs truncate any existing file and write a header carrying the
    current plan-store key set.  Resumed runs replay the existing journal
    (validating its fingerprint), then append a fresh header repeating
    the *original* run's prewarmed set so any further resume still sees
    it.  Returns the open writer plus the replayed state.
    """
    tasks = list(tasks)
    fingerprint = manifest_fingerprint(tasks, seed, config)
    replay = JournalReplay()
    if resume and os.path.exists(path):
        replay = read_journal(path, fingerprint)
    journal = Journal(path, append=resume)
    effective = replay.prewarmed if replay.prewarmed is not None else prewarmed
    journal.write_header(
        fingerprint, tasks=len(tasks), seed=seed, prewarmed=effective,
    )
    if replay.results:
        obs.add("engine.journal.resumed", len(replay.results))
    return journal, replay
