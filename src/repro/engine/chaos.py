"""Deterministic process-level fault injection for the batch executor.

:mod:`repro.guard.testing` injects *cooperative* faults (budget trips at
the n-th checkpoint); this module injects the uncooperative kind — the
worker process dies mid-task, hangs forever, or the whole parent crashes
— so the executor's crash isolation, retry, quarantine, and journal
resume paths are testable in CI without flaky timing games.

A :class:`ChaosPlan` maps task indices to scheduled faults::

    plan = parse_chaos("kill:2,hang:3,abort:4")
    # task 2's first dispatch SIGKILLs its worker (then runs clean),
    # task 3's first dispatch hangs until the hang watchdog shoots it,
    # the parent raises ChaosAbort after 4 tasks complete (a simulated
    # crash, for --journal/--resume round trips).

``kill:2*3`` kills the first three dispatch attempts of task 2 — with
``max_retries=2`` that is a poison task and must be quarantined.

The parent consumes one scheduled fault per dispatch *attempt* and ships
it to the worker inside the task payload; the worker applies it at task
start (:func:`apply_action`).  Consumption in the parent is what makes
the schedule deterministic: a retried task sees the remaining schedule,
not a fresh copy, regardless of worker count or pool scheduling.
"""

from __future__ import annotations

import os
import signal
import time

from .._errors import ReproError

__all__ = ["ChaosAbort", "ChaosPlan", "apply_action", "parse_chaos"]


class ChaosAbort(ReproError):
    """The chaos plan crashed the parent run (simulated, for resume tests)."""


class ChaosPlan:
    """A deterministic schedule of worker faults, keyed by task index."""

    __slots__ = ("kill", "hang", "abort_after")

    def __init__(
        self,
        *,
        kill: dict[int, int] | None = None,
        hang: dict[int, int] | None = None,
        abort_after: int | None = None,
    ):
        #: task index -> remaining dispatch attempts to SIGKILL.
        self.kill = dict(kill or {})
        #: task index -> remaining dispatch attempts to hang.
        self.hang = dict(hang or {})
        #: abort the parent after this many tasks complete (``None`` = never).
        self.abort_after = abort_after

    def disruptive(self) -> bool:
        """Whether any scheduled fault kills or hangs a worker.

        Such faults need process isolation even at ``workers=1`` (an
        in-process SIGKILL would take the whole batch down), so the
        executor promotes the run to a pool of one.
        """
        return bool(self.kill) or bool(self.hang)

    def take(self, index: int) -> str | None:
        """Consume and return the fault for this dispatch of task *index*."""
        for mode, schedule in (("kill", self.kill), ("hang", self.hang)):
            remaining = schedule.get(index, 0)
            if remaining > 0:
                schedule[index] = remaining - 1
                if schedule[index] <= 0:
                    del schedule[index]
                return mode
        return None

    def __repr__(self) -> str:
        parts = [f"kill:{i}*{n}" for i, n in sorted(self.kill.items())]
        parts += [f"hang:{i}*{n}" for i, n in sorted(self.hang.items())]
        if self.abort_after is not None:
            parts.append(f"abort:{self.abort_after}")
        return f"ChaosPlan({','.join(parts) or 'inert'})"


def parse_chaos(spec: str) -> ChaosPlan:
    """Parse a chaos spec string: ``kill:IDX[*TIMES]``, ``hang:IDX[*TIMES]``,
    ``abort:N``, comma-separated.  Raises :class:`ReproError` on bad specs.
    """
    kill: dict[int, int] = {}
    hang: dict[int, int] = {}
    abort_after: int | None = None
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        mode, _, value = part.partition(":")
        mode = mode.strip()
        try:
            if mode == "abort":
                abort_after = int(value)
                if abort_after < 0:
                    raise ValueError(value)
            elif mode in ("kill", "hang"):
                index_text, _, times_text = value.partition("*")
                index = int(index_text)
                times = int(times_text) if times_text else 1
                if index < 0 or times < 1:
                    raise ValueError(value)
                schedule = kill if mode == "kill" else hang
                schedule[index] = schedule.get(index, 0) + times
            else:
                raise ValueError(mode)
        except ValueError as error:
            raise ReproError(
                f"bad chaos spec {part!r}: expected kill:IDX[*TIMES], "
                "hang:IDX[*TIMES], or abort:N"
            ) from error
    return ChaosPlan(kill=kill, hang=hang, abort_after=abort_after)


def apply_action(action: str) -> None:
    """Worker-side fault application, called before the task body runs.

    ``kill`` is a real ``SIGKILL`` to the worker's own pid — the python
    level sees nothing; the parent sees ``BrokenProcessPool`` exactly as
    it would for a segfault or the OOM killer.  ``hang`` sleeps forever
    (until the hang watchdog or the test harness shoots the process).
    """
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        while True:  # pragma: no cover - killed externally
            time.sleep(0.5)
    else:
        raise ReproError(f"unknown chaos action {action!r}")
