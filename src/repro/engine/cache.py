"""A thread-safe, content-addressed LRU cache of compiled query plans.

Keys are :func:`repro.engine.canon.content_hash` digests, so semantically
identical query shapes (alpha-variants, commutative reorderings, equal
polynomial atoms) share one entry.  The cache is bounded both by entry
count and by total compiled cells (the dominant memory cost of a plan);
least-recently-used plans are evicted first.  Hit / miss / eviction
counts flow into :mod:`repro.obs` under ``engine.cache.*``.

A warm cache can be **spilled** to a JSON-lines file and **loaded** back
in a later process: plans serialize their compiled artifacts (canonical
formula text, cell constraint systems, decision bits, witnesses) rather
than a pickle, so the spill format is stable, diffable, and independent
of the Python version — see docs/ENGINE.md for the schema.
"""

from __future__ import annotations

import json
import threading
import warnings
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from .. import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .prepared import PreparedQuery

__all__ = ["PlanCache", "CacheStats", "DEFAULT_CACHE", "default_cache"]

#: Spill-file schema tag; bump on incompatible changes.
SPILL_SCHEMA = "repro.engine.plan/v1"


class CacheStats:
    """Monotonic counters for one :class:`PlanCache` instance."""

    __slots__ = ("hits", "misses", "evictions", "spilled", "loaded", "skipped")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spilled = 0
        self.loaded = 0
        self.skipped = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class PlanCache:
    """LRU map ``content hash -> PreparedQuery`` with size/entry caps."""

    def __init__(
        self,
        max_entries: int = 256,
        max_cells: int | None = 100_000,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.max_cells = max_cells
        self.stats = CacheStats()
        self._plans: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self._cells = 0
        self._lock = threading.RLock()

    # -- core map ----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._plans

    def get(self, key: str) -> "PreparedQuery | None":
        """Look *key* up, refreshing its recency; counts a hit or miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.stats.misses += 1
                obs.add("engine.cache.miss")
                return None
            self._plans.move_to_end(key)
            self.stats.hits += 1
            obs.add("engine.cache.hit")
            return plan

    def put(self, plan: "PreparedQuery") -> "PreparedQuery":
        """Insert *plan* (keyed by its content hash), evicting as needed.

        Returns the cached plan: if another thread inserted the same key
        first, the earlier plan wins so all callers share one object.
        """
        with self._lock:
            existing = self._plans.get(plan.key)
            if existing is not None:
                self._plans.move_to_end(plan.key)
                return existing
            self._plans[plan.key] = plan
            self._cells += plan.cell_count()
            self._evict()
            obs.set_gauge("engine.cache.entries", len(self._plans))
            obs.set_gauge("engine.cache.cells", self._cells)
            return plan

    def get_or_compile(
        self, key: str, factory: Callable[[], "PreparedQuery"]
    ) -> "PreparedQuery":
        """The common path: return the cached plan for *key* or compile one.

        Compilation runs outside the lock (it can take seconds), so two
        threads may race to compile the same shape; :meth:`put` keeps the
        first result.
        """
        plan = self.get(key)
        if plan is not None:
            return plan
        return self.put(factory())

    def _evict(self) -> None:
        while self._plans and (
            len(self._plans) > self.max_entries
            or (self.max_cells is not None and self._cells > self.max_cells
                and len(self._plans) > 1)
        ):
            _, evicted = self._plans.popitem(last=False)
            self._cells -= evicted.cell_count()
            self.stats.evictions += 1
            obs.add("engine.cache.eviction")

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._cells = 0
            obs.set_gauge("engine.cache.entries", 0)
            obs.set_gauge("engine.cache.cells", 0)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._plans)

    # -- persistence -------------------------------------------------------
    def spill(self, path: str, append: bool = True) -> int:
        """Write every cached plan to the JSONL file *path* (LRU first).

        Returns the number of plans written.  ``append=False`` truncates
        first (the CLI uses this so a reused spill file does not grow
        without bound).  Plans loaded from a spill and re-spilled
        round-trip unchanged.
        """
        with self._lock:
            plans = list(self._plans.values())
        written = 0
        with open(path, "a" if append else "w", encoding="utf-8") as handle:
            for plan in plans:
                record = plan.to_record()
                record["schema"] = SPILL_SCHEMA
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                written += 1
        self.stats.spilled += written
        obs.add("engine.cache.spilled", written)
        return written

    def load(self, path: str) -> int:
        """Load plans spilled by :meth:`spill`; returns how many were added.

        Duplicate keys are skipped (a key's compiled artifacts are a
        deterministic function of the key, so any copy is as good as any
        other).  Blank lines are ignored; malformed lines — invalid JSON,
        non-objects, unknown schema tags, or records a plan cannot be
        rebuilt from — are *skipped* with one warning each, counted in
        ``stats.skipped`` and ``engine.cache.load_skipped``, rather than
        aborting the whole load (mirroring :func:`repro.obs.read_jsonl`):
        one corrupt line must not make an entire warm spill unusable.
        """
        from .prepared import PreparedQuery

        added = 0
        records, skipped = _read_records(path)
        for lineno, record in records:
            try:
                plan = PreparedQuery.from_record(record)
            except Exception as error:  # noqa: BLE001 - any bad payload skips
                skipped += 1
                warnings.warn(
                    f"{path}:{lineno}: skipping unloadable plan record "
                    f"({type(error).__name__}: {error})",
                    stacklevel=2,
                )
                continue
            with self._lock:
                fresh = plan.key not in self._plans
                if not fresh:
                    # Refresh recency; keep the already-shared object.
                    self._plans.move_to_end(plan.key)
                    continue
            self.put(plan)
            added += 1
        self.stats.loaded += added
        obs.add("engine.cache.loaded", added)
        if skipped:
            self.stats.skipped += skipped
            obs.add("engine.cache.load_skipped", skipped)
        return added


def _read_records(path: str) -> tuple[list[tuple[int, dict]], int]:
    """Parse a spill file into ``(lineno, record)`` pairs plus a skip count.

    Blank lines are silently ignored; invalid JSON, non-object lines, and
    unknown schema tags are counted and reported via :mod:`warnings`
    instead of raising, so a partially corrupt spill still yields every
    readable plan.
    """
    records: list[tuple[int, dict]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                skipped += 1
                warnings.warn(
                    f"{path}:{lineno}: skipping malformed plan line ({error})",
                    stacklevel=3,
                )
                continue
            if not isinstance(record, dict):
                skipped += 1
                warnings.warn(
                    f"{path}:{lineno}: skipping non-object plan line",
                    stacklevel=3,
                )
                continue
            schema = record.get("schema")
            if schema != SPILL_SCHEMA:
                skipped += 1
                warnings.warn(
                    f"{path}:{lineno}: skipping record with unknown plan "
                    f"schema {schema!r} (expected {SPILL_SCHEMA!r})",
                    stacklevel=3,
                )
                continue
            records.append((lineno, record))
    return records, skipped


#: The process-wide cache :func:`repro.engine.prepare` uses by default.
DEFAULT_CACHE = PlanCache()


def default_cache() -> PlanCache:
    """The shared process-wide plan cache."""
    return DEFAULT_CACHE
