"""The query engine: prepared queries, plan caching, batch execution.

Everything upstream of this package evaluates one query from scratch;
this package amortizes the exponential compile work (QE / CAD / cell
decomposition) across repeated and concurrent evaluations — the paper's
Section 3 blow-up is exactly the cost worth paying once per query
*shape* instead of once per evaluation:

* :mod:`repro.engine.canon` — structural normal form + content hash, so
  alpha-variants and commutative reorderings share one cache key;
* :mod:`repro.engine.prepared` — compile once, evaluate many times, with
  plan provenance;
* :mod:`repro.engine.cache` — a thread-safe LRU plan cache with JSONL
  spill/load for warm restarts;
* :mod:`repro.engine.store` — a cross-process shared plan store (SQLite)
  with a read-through/write-back cache adapter, so every worker — and
  every run sharing the store file — compiles each plan at most once;
* :mod:`repro.engine.executor` — a fault-tolerant process-pool batch
  executor with per-task budgets, deterministic per-task seeds, crash
  isolation with retry/backoff, and poison-task quarantine
  (``python -m repro batch``);
* :mod:`repro.engine.journal` — an append-only journal of completed
  batch tasks, so interrupted runs resume byte-identically
  (``--journal PATH --resume``);
* :mod:`repro.engine.chaos` — deterministic process-level fault
  injection (worker kills/hangs, simulated parent crashes) for testing
  all of the above.

See docs/ENGINE.md for cache-key semantics, the spill schema, the shared
plan store, and the batch manifest format.
"""

from .canon import (
    canonical_formula,
    canonical_term,
    canonical_text,
    content_hash,
)
from .cache import DEFAULT_CACHE, CacheStats, PlanCache, default_cache
from .chaos import ChaosAbort, ChaosPlan, parse_chaos
from .journal import JOURNAL_SCHEMA, Journal, manifest_fingerprint, read_journal
from .prepared import PlanProvenance, PreparedQuery, prepare
from .store import PlanStore, StoreBackedCache
from .executor import (
    OPS,
    cache_outcome,
    execute_task,
    normalize_task,
    run_batch,
    task_key,
    task_seed,
    worker_entry,
)

__all__ = [
    "canonical_formula",
    "canonical_term",
    "canonical_text",
    "content_hash",
    "PlanCache",
    "CacheStats",
    "DEFAULT_CACHE",
    "default_cache",
    "PlanProvenance",
    "PreparedQuery",
    "prepare",
    "PlanStore",
    "StoreBackedCache",
    "ChaosAbort",
    "ChaosPlan",
    "parse_chaos",
    "JOURNAL_SCHEMA",
    "Journal",
    "manifest_fingerprint",
    "read_journal",
    "OPS",
    "normalize_task",
    "execute_task",
    "worker_entry",
    "cache_outcome",
    "run_batch",
    "task_seed",
    "task_key",
]
