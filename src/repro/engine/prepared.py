"""Prepared queries: compile a query shape once, evaluate it many times.

The exponential work of the pipeline — quantifier elimination and
cell decomposition (and, for decision plans, CAD) — depends only on the
*shape* of a query, not on the region or instance it is evaluated
against.  :func:`prepare` pays that cost once and returns a
:class:`PreparedQuery` whose evaluations (exact volume over a clip box,
point membership, Monte Carlo estimation, budget-governed robust
evaluation) reuse the compiled artifacts.

Plans carry provenance: the compile stages that ran with their
durations, the resource consumption charged against the compile-time
budget, and whether the plan was compiled in this process or loaded from
a cache spill (:mod:`repro.engine.cache`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Mapping, Sequence

from .. import guard, obs
from .._errors import EvaluationError, QEError
from ..geometry.decomposition import clip_cells, formula_to_cells
from ..geometry.polyhedron import Polyhedron
from ..geometry.volume import union_volume
from ..guard.budget import Budget
from ..guard.errors import BudgetExceeded
from ..guard.fallback import RobustResult
from ..logic.formulas import Formula
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..logic.parser import parse
from ..logic.printer import formula_to_str
from ..qe.linear import LinConstraint
from .canon import canonical_formula, content_hash
from .cache import DEFAULT_CACHE, PlanCache

__all__ = ["PlanProvenance", "PreparedQuery", "prepare"]

#: Plan kinds: ``volume`` (semi-linear volume plan: QE + cells) and
#: ``decide`` (FO + POLY sentence decided by CAD at compile time).
KINDS = ("volume", "decide")

#: Sentinel distinguishing "use the shared cache" from "no cache".
_SHARED = object()


@dataclass(frozen=True)
class PlanProvenance:
    """Where a plan came from and what compiling it cost."""

    stages: tuple[tuple[str, float], ...]
    compile_s: float
    budget: dict[str, Any] | None = None
    source: str = "compiled"

    def as_dict(self) -> dict[str, Any]:
        return {
            "stages": [[name, round(seconds, 6)] for name, seconds in self.stages],
            "compile_s": round(self.compile_s, 6),
            "budget": self.budget,
            "source": self.source,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PlanProvenance":
        return PlanProvenance(
            stages=tuple((str(n), float(s)) for n, s in data.get("stages", [])),
            compile_s=float(data.get("compile_s", 0.0)),
            budget=data.get("budget"),
            source=str(data.get("source", "compiled")),
        )


class PreparedQuery:
    """A compiled query plan; immutable apart from its evaluation memo."""

    __slots__ = (
        "kind", "key", "formula", "text", "variables", "cells", "qf",
        "decision", "witness", "provenance", "_volumes", "_lock",
    )

    def __init__(
        self,
        *,
        kind: str,
        key: str,
        formula: Formula,
        text: str,
        variables: tuple[str, ...],
        cells: tuple[Polyhedron, ...] | None,
        qf: Formula | None,
        decision: bool | None,
        witness: dict[str, Fraction] | None,
        provenance: PlanProvenance,
    ):
        self.kind = kind
        self.key = key
        self.formula = formula
        self.text = text
        self.variables = variables
        self.cells = cells
        self.qf = qf
        self.decision = decision
        self.witness = witness
        self.provenance = provenance
        self._volumes: dict[Any, Fraction] = {}
        self._lock = threading.Lock()

    # -- introspection -----------------------------------------------------
    def cell_count(self) -> int:
        return 0 if self.cells is None else len(self.cells)

    def __repr__(self) -> str:
        return (
            f"PreparedQuery(kind={self.kind!r}, key={self.key[:12]}..., "
            f"variables={self.variables}, cells={self.cell_count()})"
        )

    # -- evaluation --------------------------------------------------------
    def volume(
        self, box: Sequence[tuple[Fraction, Fraction]] | None = None
    ) -> Fraction:
        """Exact volume of the compiled cells clipped to *box*.

        ``box=None`` means the unit cube (the paper's VOL_I).  Results are
        memoized per box, so repeated evaluation of the same region is a
        dictionary lookup.
        """
        self._require("volume")
        box = self._box(box)
        memo_key = tuple(box)
        with self._lock:
            cached = self._volumes.get(memo_key)
        if cached is not None:
            obs.add("engine.eval.memo_hit")
            return cached
        start = time.perf_counter()
        with obs.span("engine.evaluate", kind="volume", cells=self.cell_count()):
            clipped = clip_cells(list(self.cells), self.variables, box)
            value = union_volume(clipped)
        obs.observe_value("engine.query.volume_s", time.perf_counter() - start)
        with self._lock:
            self._volumes[memo_key] = value
        obs.add("engine.eval.volume")
        return value

    def truth(self, assignment: Mapping[str, "Fraction | int"]) -> bool:
        """Exact membership of a rational point in the compiled set."""
        self._require("truth")
        point = tuple(Fraction(assignment[v]) for v in self.variables)
        obs.add("engine.eval.truth")
        return any(cell.contains(point) for cell in self.cells)

    def approx_volume(
        self,
        epsilon: float = 0.05,
        delta: float = 0.05,
        rng=None,
        box: Sequence[tuple[Fraction, Fraction]] | None = None,
    ):
        """Monte Carlo estimate over the compiled quantifier-free matrix.

        The sampling stream is identical to a cold run with the same rng
        (hits are decided semantically, and QE preserves semantics), so
        prepared and unprepared estimates agree bit-for-bit.
        """
        self._require("approx_volume")
        from ..geometry.sampling import hit_or_miss_volume, hoeffding_sample_size

        if rng is None:
            import numpy as np

            rng = np.random.default_rng(0)
        samples = hoeffding_sample_size(epsilon, delta)
        float_box = [(float(low), float(high)) for low, high in self._box(box)]
        obs.add("engine.eval.approx")
        start = time.perf_counter()
        estimate = hit_or_miss_volume(
            self.qf, self.variables, samples, rng, box=float_box, delta=delta
        )
        obs.observe_value("engine.query.mc_s", time.perf_counter() - start)
        return estimate

    def robust_volume(
        self,
        *,
        epsilon: float = 0.05,
        delta: float = 0.05,
        budget: Budget | None = None,
        policy: str = "auto",
        box: Sequence[tuple[Fraction, Fraction]] | None = None,
        rng=None,
    ) -> RobustResult:
        """Budget-governed evaluation with the guard's degradation ladder.

        Like :func:`repro.guard.robust_volume`, but the exact rung reuses
        the compiled cells (QE and decomposition are already paid), so
        only clipping, union volume, and — on exhaustion — Monte Carlo
        run under the budget.  Modes: ``exact`` or ``approximate``.
        """
        self._require("robust_volume")
        if policy not in ("off", "auto", "approx-only"):
            raise EvaluationError(f"unknown fallback policy {policy!r}")
        budget = budget if budget is not None else guard.active()
        attempts: list[tuple[str, BudgetExceeded]] = []
        with obs.span("engine.robust_volume", policy=policy):
            if policy != "approx-only":
                try:
                    if budget is not None:
                        budget.reset_consumed()
                    with guard.govern(budget):
                        value = self.volume(box)
                    obs.observe_value("guard.fallback.attempts", len(attempts))
                    return RobustResult(value, "exact", attempts=attempts)
                except BudgetExceeded as error:
                    attempts.append(("exact", error))
                    if policy == "off":
                        raise
                    obs.add("guard.fallback_transitions")
            with guard.suspend():
                estimate = self.approx_volume(epsilon, delta, rng=rng, box=box)
        obs.observe_value("guard.fallback.attempts", len(attempts))
        return RobustResult(
            estimate.estimate,
            "approximate",
            confidence_radius=estimate.confidence_radius,
            samples=estimate.samples,
            epsilon=epsilon,
            delta=delta,
            attempts=attempts,
        )

    def decide(self) -> bool:
        """The compile-time CAD decision of a ``decide`` plan."""
        if self.kind != "decide":
            raise EvaluationError("decide() needs a plan prepared with kind='decide'")
        obs.add("engine.eval.decide")
        return bool(self.decision)

    def _require(self, method: str) -> None:
        if self.kind != "volume":
            raise EvaluationError(
                f"{method}() needs a plan prepared with kind='volume', "
                f"not {self.kind!r}"
            )

    def _box(
        self, box: Sequence[tuple[Fraction, Fraction]] | None
    ) -> list[tuple[Fraction, Fraction]]:
        if box is None:
            return [(Fraction(0), Fraction(1))] * len(self.variables)
        if len(box) != len(self.variables):
            raise EvaluationError(
                f"box must give bounds for all of {self.variables}"
            )
        return [(Fraction(low), Fraction(high)) for low, high in box]

    # -- persistence -------------------------------------------------------
    def to_record(self) -> dict[str, Any]:
        """A JSON-able snapshot of the compiled artifacts (see spill docs)."""
        return {
            "kind": self.kind,
            "key": self.key,
            "text": self.text,
            "variables": list(self.variables),
            "qf": None if self.qf is None else formula_to_str(self.qf),
            "cells": None if self.cells is None else [
                [
                    {
                        "coeffs": {v: str(c) for v, c in constraint.coeffs},
                        "constant": str(constraint.constant),
                        "op": constraint.op,
                    }
                    for constraint in cell.constraints
                ]
                for cell in self.cells
            ],
            "decision": self.decision,
            "witness": None if self.witness is None else {
                v: str(value) for v, value in self.witness.items()
            },
            "provenance": self.provenance.as_dict(),
        }

    @staticmethod
    def from_record(record: Mapping[str, Any]) -> "PreparedQuery":
        """Rebuild a plan from :meth:`to_record` output (spill load path)."""
        variables = tuple(record["variables"])
        cells = None
        if record.get("cells") is not None:
            cells = tuple(
                Polyhedron.make(
                    variables,
                    [
                        LinConstraint.make(
                            {v: Fraction(c) for v, c in entry["coeffs"].items()},
                            Fraction(entry["constant"]),
                            entry["op"],
                        )
                        for entry in cell
                    ],
                )
                for cell in record["cells"]
            )
        witness = record.get("witness")
        provenance = PlanProvenance.from_dict(record.get("provenance", {}))
        if provenance.source != "spill":
            provenance = PlanProvenance(
                provenance.stages, provenance.compile_s, provenance.budget, "spill"
            )
        return PreparedQuery(
            kind=record["kind"],
            key=record["key"],
            formula=parse(record["text"]),
            text=record["text"],
            variables=variables,
            cells=cells,
            qf=None if record.get("qf") is None else parse(record["qf"]),
            decision=record.get("decision"),
            witness=None if witness is None else {
                v: Fraction(value) for v, value in witness.items()
            },
            provenance=provenance,
        )


class _StageClock:
    """Collects (stage, seconds) pairs during compilation."""

    def __init__(self) -> None:
        self.stages: list[tuple[str, float]] = []
        self.started = time.perf_counter()

    def stage(self, name: str, start: float) -> None:
        self.stages.append((name, time.perf_counter() - start))

    def total(self) -> float:
        return time.perf_counter() - self.started


def prepare(
    query: "Formula | str",
    variables: Sequence[str] | None = None,
    *,
    kind: str = "volume",
    cache: "PlanCache | None | object" = _SHARED,
    budget: Budget | None = None,
    prune: bool = True,
    certify: bool = False,
) -> PreparedQuery:
    """Compile *query* once (or fetch its cached plan) for repeated evaluation.

    ``query`` may be a formula AST or parseable text.  ``variables`` fixes
    the evaluation dimension order (default: sorted free variables).
    ``kind='volume'`` compiles parse -> canonicalize -> QE -> cell
    decomposition for a linear query; ``kind='decide'`` decides an
    FO + POLY sentence by CAD and caches the bit.  ``certify=True``
    additionally extracts a rational witness point via CAD sampling
    (recorded on the plan; adds compile cost, never evaluation cost).

    ``cache`` defaults to the shared process-wide
    :data:`~repro.engine.cache.DEFAULT_CACHE`; pass ``cache=None`` to
    compile without caching, a private :class:`PlanCache`, or a
    :class:`~repro.engine.store.StoreBackedCache` (in-memory misses then
    fall through to a cross-process shared store before compiling).
    Compilation runs under *budget* (or the ambient governed budget), and
    the plan's provenance records the consumption it charged.
    """
    if kind not in KINDS:
        raise EvaluationError(f"unknown plan kind {kind!r}; one of {KINDS}")
    clock = _StageClock()

    if isinstance(query, str):
        start = time.perf_counter()
        formula = parse(query)
        clock.stage("parse", start)
    else:
        formula = query

    start = time.perf_counter()
    canonical = canonical_formula(formula)
    text = formula_to_str(canonical)
    clock.stage("canonicalize", start)

    if variables is None:
        variables = tuple(sorted(canonical.free_variables()))
    else:
        variables = tuple(variables)
    key = content_hash(canonical, variables, kind)

    plan_cache: PlanCache | None
    plan_cache = DEFAULT_CACHE if cache is _SHARED else cache  # type: ignore[assignment]

    def factory() -> PreparedQuery:
        obs.add("engine.compile")
        with obs.span("engine.compile", kind=kind, variables=len(variables)):
            plan = _compile(
                kind, key, canonical, text, variables, clock, budget,
                prune, certify,
            )
        obs.observe_value("engine.plan.compile_s", plan.provenance.compile_s)
        return plan

    # One govern() covers the whole cache interaction, not just _compile:
    # a store-backed cache (repro.engine.store) does budgeted I/O — and can
    # *wait* on another process's compile — on the lookup path itself.
    with guard.govern(budget):
        if plan_cache is None:
            return factory()
        return plan_cache.get_or_compile(key, factory)


def _compile(
    kind: str,
    key: str,
    canonical: Formula,
    text: str,
    variables: tuple[str, ...],
    clock: _StageClock,
    budget: Budget | None,
    prune: bool,
    certify: bool,
) -> PreparedQuery:
    cells: tuple[Polyhedron, ...] | None = None
    qf: Formula | None = None
    decision: bool | None = None
    witness: dict[str, Fraction] | None = None

    if kind == "decide":
        from ..qe.cad import decide as cad_decide

        free = canonical.free_variables()
        if free:
            raise QEError(
                f"a 'decide' plan needs a sentence; free variables {sorted(free)}"
            )
        start = time.perf_counter()
        decision = cad_decide(canonical)
        clock.stage("cad", start)
    else:
        qf = canonical
        if not is_quantifier_free(qf):
            if max_degree(qf) > 1:
                raise QEError("quantified nonlinear formulas are not semi-linear")
            from ..qe.fourier_motzkin import qe_linear

            start = time.perf_counter()
            qf = qe_linear(qf, prune=prune)
            clock.stage("qe", start)
        start = time.perf_counter()
        cells = tuple(formula_to_cells(qf, variables, prune=prune))
        clock.stage("decompose", start)
        if certify and cells:
            from ..qe.cad import find_sample

            start = time.perf_counter()
            sample = find_sample(qf)
            if sample is not None and all(
                isinstance(value, Fraction) for value in sample.values()
            ):
                witness = {v: Fraction(value) for v, value in sample.items()}
            clock.stage("certify", start)

    provenance = PlanProvenance(
        stages=tuple(clock.stages),
        compile_s=clock.total(),
        budget=budget.snapshot() if budget is not None else None,
    )
    return PreparedQuery(
        kind=kind,
        key=key,
        formula=canonical,
        text=text,
        variables=variables,
        cells=cells,
        qf=qf,
        decision=decision,
        witness=witness,
        provenance=provenance,
    )
