"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Sub-classes mark which subsystem raised the error and which
contract was violated (closure, safety, determinism, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SignatureError(ReproError):
    """A formula uses operations outside the signature it claims to be in.

    For example, a multiplication of two variables inside a formula that is
    passed to the FO + LIN (linear constraints) quantifier-elimination
    procedure.
    """


class NotQuantifierFree(ReproError):
    """An operation requiring a quantifier-free formula received quantifiers."""


class UnboundedSetError(ReproError):
    """An exact-volume computation was asked for an unbounded set.

    The paper restricts volume to bounded (Lebesgue-measurable) sets; the
    library mirrors that restriction and raises instead of returning
    ``inf`` silently.
    """


class NotDeterministicError(ReproError):
    """A formula used as a deterministic term-former is not deterministic.

    Deterministic formulae ``gamma(x, w)`` must define *at most one* ``x``
    for every ``w`` (Section 5 of the paper).  The determinism check is
    decidable; this error is raised when the check fails.
    """


class SafetyError(ReproError):
    """An aggregation was attempted over a set not guaranteed to be finite.

    FO + POLY + SUM only permits summation over range-restricted
    expressions.  This error signals either a syntactically ill-formed
    aggregate or a runtime detection of an infinite range.
    """


class EvaluationError(ReproError):
    """A query or term could not be evaluated on the given instance."""


class QEError(ReproError):
    """Quantifier elimination failed (unsupported fragment or internal error)."""


class GeometryError(ReproError):
    """A geometric computation received invalid input (e.g. empty dimension)."""


class ApproximationError(ReproError):
    """An approximation operator was configured with invalid parameters."""
