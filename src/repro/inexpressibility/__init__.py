"""The Section 4 impossibility machinery, made executable.

Separating sentences, Ehrenfeucht-Fraisse games on coloured linear orders,
the AVG reduction of Theorem 1, the good-instance volume reduction of
Theorem 2, and the FO_act-to-circuit compilation of Lemma 3.
"""

from .structures import OrderedStructure, two_set_instance
from .ef_games import distinguishing_rank, duplicator_wins, pure_order_equivalent
from .separating import (
    SeparationCounterexample,
    check_separating_on_instances,
    ef_refutation_pair,
    refute_rank,
)
from .reduction_avg import (
    AvgReduction,
    avg_reduction,
    delta_for_epsilon,
    separation_constants,
)
from .good_instances import (
    GoodInstance,
    good_constants,
    interval_sets,
    volume_decision,
)
from .circuits import Circuit, Gate, compile_sentence, separates_cardinalities

__all__ = [
    "OrderedStructure",
    "two_set_instance",
    "duplicator_wins",
    "distinguishing_rank",
    "pure_order_equivalent",
    "SeparationCounterexample",
    "check_separating_on_instances",
    "ef_refutation_pair",
    "refute_rank",
    "AvgReduction",
    "avg_reduction",
    "delta_for_epsilon",
    "separation_constants",
    "GoodInstance",
    "good_constants",
    "interval_sets",
    "volume_decision",
    "Circuit",
    "Gate",
    "compile_sentence",
    "separates_cardinalities",
]
