"""Theorem 2's good-instance reduction: approximate volume decides
cardinality gaps.

A *good instance* has A = {0, ..., n-1} and B a nonempty proper subset of
A.  Lemma 2 of the paper maps adom into [0, 1] with equal spacing and
forms

* X: the union of intervals starting at a point of B and spanning to the
  next point of A - B (or to 1 if none),
* Y: the same with the roles of B and A - B swapped.

VOL(X) then tracks card(B)/n closely enough that eps-approximations of
VOL(X), VOL(Y) (eps < 1/2) decide whether card(B) < c1 n or > c2 n with
``c1 = (1 - 2 eps)/3, c2 = (2 + 2 eps)/3`` — a (c1, c2)-good sentence,
which Lemma 3's AC^0 argument forbids.

Everything here is executable and exact: instances, interval sets, their
true volumes, and the decision rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..qe.intervals import Interval, IntervalUnion
from .._errors import ApproximationError

__all__ = [
    "GoodInstance",
    "good_constants",
    "interval_sets",
    "volume_decision",
]


@dataclass(frozen=True)
class GoodInstance:
    """A good instance: A = {0..n-1}, B a nonempty proper subset."""

    n: int
    b: frozenset[int]

    @staticmethod
    def make(n: int, b: Sequence[int]) -> "GoodInstance":
        members = frozenset(b)
        if n < 2:
            raise ValueError("a good instance needs n >= 2")
        if not members or members >= set(range(n)) or not members < set(range(n)):
            raise ValueError("B must be a nonempty proper subset of {0..n-1}")
        return GoodInstance(n, members)

    def embedded(self, element: int) -> Fraction:
        """The equal-spacing embedding of adom into [0, 1]."""
        return Fraction(element, self.n)


def good_constants(epsilon: Fraction) -> tuple[Fraction, Fraction]:
    """The paper's c1 = (1 - 2 eps)/3 and c2 = (2 + 2 eps)/3."""
    epsilon = Fraction(epsilon)
    if not 0 < epsilon < Fraction(1, 2):
        raise ApproximationError("need 0 < eps < 1/2")
    return (1 - 2 * epsilon) / 3, (2 + 2 * epsilon) / 3


def interval_sets(instance: GoodInstance) -> tuple[IntervalUnion, IntervalUnion]:
    """The sets X and Y of Lemma 2 (as exact interval unions in [0, 1])."""
    x_intervals: list[Interval] = []
    y_intervals: list[Interval] = []
    complement = set(range(instance.n)) - instance.b
    for element in range(instance.n):
        start = instance.embedded(element)
        if element in instance.b:
            next_other = min((e for e in complement if e > element), default=None)
            end = Fraction(1) if next_other is None else instance.embedded(next_other)
            if end > start:
                x_intervals.append(Interval(start, end, True, False))
        else:
            next_other = min((e for e in instance.b if e > element), default=None)
            end = Fraction(1) if next_other is None else instance.embedded(next_other)
            if end > start:
                y_intervals.append(Interval(start, end, True, False))
    return IntervalUnion(x_intervals), IntervalUnion(y_intervals)


def volume_decision(
    instance: GoodInstance,
    epsilon: Fraction,
    x_estimate: Fraction | None = None,
) -> bool:
    """The (c1, c2)-good sentence induced by an eps-approximate volume.

    Given an estimate of VOL(X) within eps (default: the exact volume,
    i.e. a perfect approximator), return the decision "card(B) is large".
    The contract (verified by the E5 benchmark): the result is True
    whenever ``card(B) > c2 n`` and False whenever ``card(B) < c1 n``.
    """
    c1, c2 = good_constants(epsilon)
    x_set, _ = interval_sets(instance)
    volume = x_set.measure() if x_estimate is None else Fraction(x_estimate)
    threshold = (c1 + c2) / 2
    return volume > threshold
