"""Separating sentences (Section 4) and their EF-game refutation.

A (c1, c2)-separating sentence over the schema {U1, U2} must hold whenever
``card(U1) > c1 card(U2)`` and fail whenever ``card(U2) > c2 card(U1)``
— saying *nothing* about the middle band, which is why generic-query
bounds do not apply directly.  Proposition 1: over any o-minimal
structure, no such sentence is FO-definable.

This module provides:

* an empirical separating-sentence *checker* for candidate sentences
  (evaluated over the two-unary-predicate structures);
* the EF-game *certificate*: for every quantifier rank r, a pair of
  instances — one on each side of the (c1, c2) band — that the duplicator
  cannot be distinguished on, refuting every rank-r sentence in the order
  vocabulary at once.  (The full proof reduces arbitrary o-minimal
  signatures to this case; the reduction chain is recorded in DESIGN.md.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from .ef_games import duplicator_wins
from .structures import OrderedStructure, two_set_instance

__all__ = [
    "SeparationCounterexample",
    "check_separating_on_instances",
    "ef_refutation_pair",
    "refute_rank",
]

#: A candidate sentence: any boolean function of a structure (e.g. a
#: compiled FO sentence, or a hand-written predicate).
Sentence = Callable[[OrderedStructure], bool]


@dataclass(frozen=True)
class SeparationCounterexample:
    """Witness that a candidate sentence is not (c1, c2)-separating."""

    instance: OrderedStructure
    expected: bool
    got: bool


def check_separating_on_instances(
    sentence: Sentence,
    c1: float,
    c2: float,
    instances: Sequence[OrderedStructure],
) -> SeparationCounterexample | None:
    """Check the separating-sentence contract on the given instances.

    Returns the first counterexample, or None if the sentence behaves as a
    (c1, c2)-separating sentence on all of them.
    """
    if not (c1 > 1 and c2 > 1):
        raise ValueError("the paper requires c1, c2 > 1")
    for instance in instances:
        cards = instance.cardinalities()
        u1, u2 = cards.get("U1", 0), cards.get("U2", 0)
        value = sentence(instance)
        if u1 > c1 * u2 and not value:
            return SeparationCounterexample(instance, True, value)
        if u2 > c2 * u1 and value:
            return SeparationCounterexample(instance, False, value)
    return None


def ef_refutation_pair(
    c1: float, c2: float, rank: int
) -> tuple[OrderedStructure, OrderedStructure]:
    """Instances A (card U1 > c1 card U2) and B (card U2 > c2 card U1)
    that are EF-equivalent at quantifier rank *rank*.

    Sizes grow like 2^rank: each colour class is made larger than
    2^rank - 1, at which point the duplicator equalises any two class
    sizes.  The returned pair certifies (via :func:`refute_rank`) that no
    rank-`rank` sentence over (U1, U2, <) is (c1, c2)-separating.
    """
    base = 2**rank  # > 2^rank - 1, the indistinguishability threshold
    small = base
    large_a = int(math.floor(c1 * small)) + 1  # card U1 > c1 * card U2
    large_b = int(math.floor(c2 * small)) + 1  # card U2 > c2 * card U1
    a = two_set_instance(max(large_a, base), small)
    b = two_set_instance(small, max(large_b, base))
    return a, b


def refute_rank(c1: float, c2: float, rank: int) -> bool:
    """True iff the EF certificate succeeds at this rank: the duplicator
    wins between the refutation pair, so no rank-`rank` separating
    sentence exists over (U1, U2, <)."""
    a, b = ef_refutation_pair(c1, c2, rank)
    return duplicator_wins(a, b, rank)
