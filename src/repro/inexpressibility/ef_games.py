"""Ehrenfeucht-Fraisse equivalence of coloured finite linear orders.

Proposition 1's proof reduces the non-existence of separating sentences to
showing that the duplicator wins r-round EF games between ``(U1, U2, <)``
instances of different cardinality ratios.  For linear orders with unary
predicates the game admits an exact *composition* decision procedure:
picking a point splits the order into an independent left and right part
(no relation spans the split), so

    A ~_r B   iff   for every a in A there is b in B with the same colour,
                    A_<a ~_{r-1} B_<b  and  A_>a ~_{r-1} B_>b,
                    and symmetrically for every b in B.

This is the Feferman-Vaught / ordered-sum composition argument, and it
gives the exact r-round winner in polynomial time (memoised over interval
pairs), rather than the exponential direct game search.
"""

from __future__ import annotations

from functools import lru_cache

from .structures import OrderedStructure

__all__ = ["duplicator_wins", "distinguishing_rank", "pure_order_equivalent"]


def duplicator_wins(
    a: OrderedStructure, b: OrderedStructure, rounds: int
) -> bool:
    """Exact r-round EF equivalence of two coloured linear orders.

    Requires the two structures to have the same predicate names.  The
    duplicator wins the ``rounds``-round game iff no FO sentence of
    quantifier rank <= rounds (over <, the predicates, and equality)
    distinguishes the structures.
    """
    if a.predicate_names() != b.predicate_names():
        raise ValueError("structures must share predicate names")
    colours_a = [a.colour(i) for i in range(a.size)]
    colours_b = [b.colour(i) for i in range(b.size)]

    @lru_cache(maxsize=None)
    def equivalent(lo_a: int, hi_a: int, lo_b: int, hi_b: int, r: int) -> bool:
        # Intervals are half-open [lo, hi).
        if r == 0:
            return True
        len_a, len_b = hi_a - lo_a, hi_b - lo_b
        if min(len_a, len_b) == 0:
            return len_a == len_b
        # Spoiler plays in A; duplicator needs a same-coloured reply in B
        # whose left and right parts match for r-1 rounds (and dually).
        for left, right, lo_s, hi_s, lo_d, hi_d, colours_s, colours_d in (
            ("A", "B", lo_a, hi_a, lo_b, hi_b, colours_a, colours_b),
            ("B", "A", lo_b, hi_b, lo_a, hi_a, colours_b, colours_a),
        ):
            for move in range(lo_s, hi_s):
                reply_found = False
                for reply in range(lo_d, hi_d):
                    if colours_s[move] != colours_d[reply]:
                        continue
                    if left == "A":
                        left_ok = equivalent(lo_s, move, lo_d, reply, r - 1)
                        right_ok = equivalent(move + 1, hi_s, reply + 1, hi_d, r - 1)
                    else:
                        left_ok = equivalent(lo_d, reply, lo_s, move, r - 1)
                        right_ok = equivalent(reply + 1, hi_d, move + 1, hi_s, r - 1)
                    if left_ok and right_ok:
                        reply_found = True
                        break
                if not reply_found:
                    return False
        return True

    return equivalent(0, a.size, 0, b.size, rounds)


def distinguishing_rank(
    a: OrderedStructure, b: OrderedStructure, max_rounds: int = 8
) -> int | None:
    """Smallest r <= max_rounds at which the spoiler wins, or None."""
    for rounds in range(1, max_rounds + 1):
        if not duplicator_wins(a, b, rounds):
            return rounds
    return None


def pure_order_equivalent(size_a: int, size_b: int, rounds: int) -> bool:
    """The classical theorem: linear orders (no predicates) of sizes both
    >= 2^rounds - 1 (or equal) are r-round equivalent.  Used as an oracle
    in tests of :func:`duplicator_wins`."""
    if size_a == size_b:
        return True
    threshold = 2**rounds - 1
    return size_a >= threshold and size_b >= threshold
