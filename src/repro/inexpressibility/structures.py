"""Finite ordered structures with unary predicates.

The proofs of Section 4 work over structures ``({0..n-1}, <, U1, ..., Uk)``:
Proposition 1's separating-sentence argument reduces to Ehrenfeucht-
Fraisse games on such structures, and Lemma 3's circuit argument evaluates
FO_act sentences over them.  This module is their concrete representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["OrderedStructure", "two_set_instance"]


@dataclass(frozen=True)
class OrderedStructure:
    """A finite linear order {0..size-1} with named unary predicates."""

    size: int
    predicates: tuple[tuple[str, frozenset[int]], ...]

    @staticmethod
    def make(size: int, predicates: Mapping[str, Sequence[int]]) -> "OrderedStructure":
        if size < 0:
            raise ValueError("size must be non-negative")
        items = []
        for name, members in sorted(predicates.items()):
            member_set = frozenset(members)
            if member_set and (min(member_set) < 0 or max(member_set) >= size):
                raise ValueError(f"predicate {name!r} has members outside the universe")
            items.append((name, member_set))
        return OrderedStructure(size, tuple(items))

    def predicate(self, name: str) -> frozenset[int]:
        for pred_name, members in self.predicates:
            if pred_name == name:
                return members
        raise KeyError(f"unknown predicate {name!r}")

    def predicate_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.predicates)

    def colour(self, element: int) -> tuple[bool, ...]:
        """The unary type of an element: membership in each predicate."""
        return tuple(element in members for _, members in self.predicates)

    def cardinalities(self) -> dict[str, int]:
        return {name: len(members) for name, members in self.predicates}


def two_set_instance(card_u1: int, card_u2: int) -> OrderedStructure:
    """The Section 4 schema: two disjoint unary relations U1, U2.

    U1 occupies the first ``card_u1`` elements and U2 the next ``card_u2``
    (the layout is irrelevant up to the order type, and EF arguments only
    use cardinalities and order).
    """
    size = card_u1 + card_u2
    return OrderedStructure.make(
        size,
        {
            "U1": range(card_u1),
            "U2": range(card_u1, size),
        },
    )
