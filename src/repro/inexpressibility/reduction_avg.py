"""Theorem 1's reduction: approximate AVG decides cardinality ratios.

The proof of Theorem 1 translates two finite sets U1, U2 into subsets of
``(0, Delta)`` and ``(1 - Delta, 1)`` respectively, so that the average of
the union is a monotone function of ``card(U1) / card(U2)``.  An
FO-definable eps-approximation of AVG (eps < 1/2) would then yield a
(c1, c2)-separating sentence — contradicting Proposition 1.

This module implements the reduction *executably*: the translation, the
exact AVG, the thresholds, and the induced ratio decision, so the
benchmark can verify the arithmetic of the proof on concrete instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from .._errors import ApproximationError

__all__ = ["AvgReduction", "avg_reduction", "delta_for_epsilon", "separation_constants"]


def delta_for_epsilon(epsilon: Fraction) -> Fraction:
    """A Delta in (0, 1/2) suitable for the given eps < 1/2.

    We take Delta = (1/2 - eps) / 2: the smaller the error tolerance the
    closer to the endpoints the two blocks can sit, leaving an eps-wide
    decision margin.
    """
    epsilon = Fraction(epsilon)
    if not 0 < epsilon < Fraction(1, 2):
        raise ApproximationError("the reduction needs 0 < eps < 1/2")
    return (Fraction(1, 2) - epsilon) / 2


def separation_constants(epsilon: Fraction) -> tuple[Fraction, Fraction]:
    """(c1, c2) > 1 induced by an eps-approximation of AVG.

    If AVG(U1' u U2') can be approximated within eps, then instances with
    card(U1) > c1 card(U2) are told apart from those with
    card(U2) > c2 card(U1): the former have average < Delta + (1 - Delta)/ (1 + c1)
    and the latter average > (1 - Delta) c2 / (1 + c2); with the choices
    below the two eps-neighbourhoods are disjoint.
    """
    epsilon = Fraction(epsilon)
    delta = delta_for_epsilon(epsilon)
    # Ratio r = card(U1)/card(U2).  avg <= (delta*r + 1) / (r + 1) and
    # avg >= (1-delta) / (r + 1).  Choose c so that the high and low bands
    # are separated by more than 2*eps.
    # Solve (1) / (1 + 1/c2) * (1-delta) - (delta*c1 + 1)/(c1 + 1) > 2 eps
    # numerically-free: take c1 = c2 = c and increase c until satisfied.
    c = Fraction(2)
    for _ in range(64):
        low_band_high = (delta * c + 1) / (c + 1)          # ratio >= c
        high_band_low = (1 - delta) * c / (c + 1)          # inverse ratio >= c
        if high_band_low - low_band_high > 2 * epsilon:
            return c, c
        c *= 2
    raise ApproximationError("could not find separation constants")  # pragma: no cover


@dataclass(frozen=True)
class AvgReduction:
    """The materialised reduction for one pair of finite sets."""

    translated_u1: tuple[Fraction, ...]
    translated_u2: tuple[Fraction, ...]
    average: Fraction
    delta: Fraction

    def decide_ratio(
        self, approximate_average: Fraction, c: Fraction
    ) -> str:
        """Classify the cardinality ratio from an approximate average.

        Returns "U1-heavy" / "U2-heavy" / "inconclusive" using the
        thresholds of :func:`separation_constants`.
        """
        low_band_high = (self.delta * c + 1) / (c + 1)
        high_band_low = (1 - self.delta) * c / (c + 1)
        midpoint = (low_band_high + high_band_low) / 2
        if approximate_average < midpoint:
            return "U1-heavy"
        if approximate_average > midpoint:
            return "U2-heavy"
        return "inconclusive"


def avg_reduction(
    u1: Sequence[Fraction], u2: Sequence[Fraction], epsilon: Fraction
) -> AvgReduction:
    """Translate (U1, U2) as in Theorem 1's proof and compute the exact AVG.

    The translation packs card(U1) distinct points into ``(0, Delta)`` and
    card(U2) distinct points into ``(1 - Delta, 1)``; only cardinalities
    matter, which is what makes AVG a function of the ratio.  (The paper's
    translation is an FO + POLY query on the stored values; ours uses the
    same target layout, computed directly.)
    """
    if not u1 or not u2:
        raise ApproximationError("both sets must be nonempty")
    delta = delta_for_epsilon(Fraction(epsilon))
    n1, n2 = len(set(u1)), len(set(u2))
    translated_u1 = tuple(
        delta * Fraction(i + 1, n1 + 1) for i in range(n1)
    )
    translated_u2 = tuple(
        1 - delta * Fraction(i + 1, n2 + 1) for i in range(n2)
    )
    total = sum(translated_u1, Fraction(0)) + sum(translated_u2, Fraction(0))
    average = total / (n1 + n2)
    return AvgReduction(translated_u1, translated_u2, average, delta)
