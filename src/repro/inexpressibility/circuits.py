"""Lemma 3: compiling FO_act sentences to bounded-depth circuits.

The final step of Theorem 2 converts a hypothetical (c1, c2)-good sentence
into a family of non-uniform AC^0 circuits (constant depth, polynomial
size) that would distinguish cardinalities ``< c1 n`` from ``> c2 n`` —
in particular some cardinalities within ``[sqrt(n), n - sqrt(n)]`` — which
AC^0 circuits cannot do (Denenberg-Gurevich-Shelah / the parity-style
lower bounds the paper cites).

This module implements the *compilation*: an FO_act sentence over
``({0..n-1}, <, arithmetic constants, B)`` becomes a circuit whose inputs
are the n membership bits of B; quantifiers become fan-in-n AND/OR layers,
so depth is the quantifier/connective depth (constant in n) and size is
O(n^rank) (polynomial).  Benchmarks then *measure* the separation failure
of fixed compiled circuits as n grows — the empirical face of the lower
bound, which we use as a known result rather than re-prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from ..logic.evaluate import evaluate_compare
from ..logic.formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
)
from .._errors import EvaluationError

__all__ = ["Gate", "Circuit", "compile_sentence", "separates_cardinalities"]


@dataclass(frozen=True)
class Gate:
    """A circuit gate.

    kind: 'const' (payload bool), 'input' (payload bit index),
    'not' / 'and' / 'or' (children are gate indices).
    """

    kind: str
    payload: object = None
    children: tuple[int, ...] = ()


@dataclass
class Circuit:
    """A boolean circuit over n input bits (the membership vector of B)."""

    input_bits: int
    gates: list[Gate] = field(default_factory=list)
    output: int = -1

    def add(self, gate: Gate) -> int:
        self.gates.append(gate)
        return len(self.gates) - 1

    def size(self) -> int:
        return len(self.gates)

    def depth(self) -> int:
        """Longest path from output to an input/constant."""
        memo: dict[int, int] = {}

        def gate_depth(index: int) -> int:
            if index in memo:
                return memo[index]
            gate = self.gates[index]
            if gate.kind in ("const", "input"):
                result = 0
            else:
                result = 1 + max(
                    (gate_depth(child) for child in gate.children), default=0
                )
            memo[index] = result
            return result

        return gate_depth(self.output)

    def evaluate(self, bits: Sequence[bool]) -> bool:
        if len(bits) != self.input_bits:
            raise EvaluationError("wrong number of input bits")
        values: list[bool | None] = [None] * len(self.gates)

        def gate_value(index: int) -> bool:
            cached = values[index]
            if cached is not None:
                return cached
            gate = self.gates[index]
            if gate.kind == "const":
                result = bool(gate.payload)
            elif gate.kind == "input":
                result = bool(bits[gate.payload])  # type: ignore[index]
            elif gate.kind == "not":
                result = not gate_value(gate.children[0])
            elif gate.kind == "and":
                result = all(gate_value(c) for c in gate.children)
            elif gate.kind == "or":
                result = any(gate_value(c) for c in gate.children)
            else:  # pragma: no cover - defensive
                raise EvaluationError(f"unknown gate kind {gate.kind!r}")
            values[index] = result
            return result

        return gate_value(self.output)


def compile_sentence(
    sentence: Formula,
    universe_size: int,
    input_predicate: str = "B",
) -> Circuit:
    """Compile an FO_act sentence into a circuit over the B-membership bits.

    Quantifiers (both kinds are read as ranging over the universe
    {0..n-1}, i.e. active semantics on the Lemma 3 structures) become
    fan-in-n gates; comparison atoms between bound variables and constants
    are evaluated at compile time (they depend only on the assignment, not
    on B); ``B(t)`` atoms become input gates.
    """
    circuit = Circuit(input_bits=universe_size)

    def build(formula: Formula, env: dict[str, Fraction]) -> int:
        if isinstance(formula, TrueFormula):
            return circuit.add(Gate("const", True))
        if isinstance(formula, FalseFormula):
            return circuit.add(Gate("const", False))
        if isinstance(formula, Compare):
            return circuit.add(Gate("const", evaluate_compare(formula, env)))
        if isinstance(formula, RelAtom):
            if formula.name != input_predicate:
                raise EvaluationError(
                    f"unknown relation {formula.name!r}; only the input "
                    f"predicate {input_predicate!r} is available"
                )
            if len(formula.args) != 1:
                raise EvaluationError("the input predicate must be unary")
            value = formula.args[0].evaluate(env)
            if value.denominator != 1 or not 0 <= value < universe_size:
                return circuit.add(Gate("const", False))
            return circuit.add(Gate("input", int(value)))
        if isinstance(formula, Not):
            child = build(formula.arg, env)
            return circuit.add(Gate("not", children=(child,)))
        if isinstance(formula, And):
            children = tuple(build(a, env) for a in formula.args)
            return circuit.add(Gate("and", children=children))
        if isinstance(formula, Or):
            children = tuple(build(a, env) for a in formula.args)
            return circuit.add(Gate("or", children=children))
        if isinstance(formula, (Exists, ExistsAdom, Forall, ForallAdom)):
            children = []
            for element in range(universe_size):
                env[formula.var] = Fraction(element)
                children.append(build(formula.body, env))
            env.pop(formula.var, None)
            kind = "or" if isinstance(formula, (Exists, ExistsAdom)) else "and"
            return circuit.add(Gate(kind, children=tuple(children)))
        raise TypeError(f"unknown formula node {type(formula).__name__}")

    if sentence.free_variables():
        raise EvaluationError("only sentences can be compiled")
    circuit.output = build(sentence, {})
    return circuit


def separates_cardinalities(
    circuit: Circuit,
    c1: float,
    c2: float,
    b_sizes: Sequence[int] | None = None,
) -> bool:
    """Does the circuit behave as a (c1, c2)-good sentence on block Bs?

    Tests B = {0..k-1} for each k (block instances suffice to witness
    failure).  Returns False as soon as a required output is wrong:
    the circuit must reject when ``k < c1 n`` and accept when ``k > c2 n``.
    """
    n = circuit.input_bits
    if b_sizes is None:
        b_sizes = range(1, n)
    for k in b_sizes:
        bits = [i < k for i in range(n)]
        value = circuit.evaluate(bits)
        if k < c1 * n and value:
            return False
        if k > c2 * n and not value:
            return False
    return True
