"""(epsilon, delta) Monte Carlo volume approximation.

A thin layer over the hit-or-miss sampler of
:mod:`repro.geometry.sampling` that chooses the sample size from the
Hoeffding bound, giving a *per-query* (not uniform-in-parameters)
probabilistic epsilon-approximation of VOL_I.  The uniform-over-parameters
version (Theorem 4) is :class:`repro.core.witness.UniformVolumeApproximator`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.sampling import (
    MonteCarloEstimate,
    hit_or_miss_volume,
    hoeffding_sample_size,
)
from ..logic.formulas import Formula
from .. import obs

__all__ = ["approximate_vol_unit_cube"]


def approximate_vol_unit_cube(
    formula: Formula,
    variables: Sequence[str],
    epsilon: float,
    delta: float,
    rng: np.random.Generator,
) -> MonteCarloEstimate:
    """Estimate VOL_I(formula) within *epsilon* with probability >= 1-delta."""
    samples = hoeffding_sample_size(epsilon, delta)
    obs.set_gauge("mc.hoeffding_sample_size", samples)
    with obs.span("approx.mc", epsilon=epsilon, delta=delta):
        return hit_or_miss_volume(formula, variables, samples, rng, delta=delta)
