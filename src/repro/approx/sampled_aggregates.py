"""Sampling-based approximation of classical aggregates (Gibbons-Matias,
Hellerstein-Haas-Wang — the paper's [16, 22]).

Section 6.2 notes that "the sampling idea was used previously for
approximating traditional relational aggregates" and extends it to the
spatial setting.  This module supplies the traditional side for large
finite relations: estimate AVG (and SUM, given the cardinality) from a
uniform row sample, with a Hoeffding confidence interval for values in a
known range — the online-aggregation guarantee of [22].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..db.instance import FiniteInstance
from .._errors import ApproximationError, EvaluationError

__all__ = ["AggregateEstimate", "sample_avg", "sample_sum"]


@dataclass(frozen=True)
class AggregateEstimate:
    """A sampled aggregate with its confidence interval."""

    estimate: float
    confidence_radius: float
    samples: int
    confidence: float

    def interval(self) -> tuple[float, float]:
        return (self.estimate - self.confidence_radius,
                self.estimate + self.confidence_radius)


def _column(
    instance: FiniteInstance, relation: str, column: int
) -> list[Fraction]:
    rows = sorted(instance.relation(relation))
    if not rows:
        raise EvaluationError(f"relation {relation!r} is empty")
    if column < 0 or column >= len(rows[0]):
        raise EvaluationError(f"column {column} out of range")
    return [row[column] for row in rows]


def sample_avg(
    instance: FiniteInstance,
    relation: str,
    column: int,
    samples: int,
    rng: np.random.Generator,
    value_range: tuple[float, float] | None = None,
    delta: float = 0.05,
) -> AggregateEstimate:
    """Estimate AVG of a column from a uniform sample of rows.

    With ``value_range = (lo, hi)`` known a priori, the Hoeffding radius
    ``(hi - lo) * sqrt(log(2/delta) / (2 samples))`` guarantees
    ``|estimate - AVG| < radius`` with probability >= 1 - delta.  Without
    a range the radius falls back on the sample's own spread (heuristic,
    as in online aggregation's running intervals).
    """
    if samples <= 0:
        raise ApproximationError("samples must be positive")
    if not (0 < delta < 1):
        raise ApproximationError("delta must lie in (0, 1)")
    values = _column(instance, relation, column)
    chosen = rng.integers(0, len(values), size=samples)
    picked = np.array([float(values[i]) for i in chosen])
    mean = float(picked.mean())
    if value_range is not None:
        spread = float(value_range[1]) - float(value_range[0])
        if spread < 0:
            raise ApproximationError("value_range must be ordered")
    else:
        spread = float(picked.max() - picked.min())
    radius = spread * math.sqrt(math.log(2.0 / delta) / (2.0 * samples))
    return AggregateEstimate(mean, radius, samples, 1.0 - delta)


def sample_sum(
    instance: FiniteInstance,
    relation: str,
    column: int,
    samples: int,
    rng: np.random.Generator,
    value_range: tuple[float, float] | None = None,
    delta: float = 0.05,
) -> AggregateEstimate:
    """Estimate SUM as cardinality * sampled AVG (cardinality is known
    exactly for a stored relation, so the error scales the AVG interval)."""
    cardinality = len(instance.relation(relation))
    avg = sample_avg(
        instance, relation, column, samples, rng,
        value_range=value_range, delta=delta,
    )
    return AggregateEstimate(
        avg.estimate * cardinality,
        avg.confidence_radius * cardinality,
        samples,
        avg.confidence,
    )
