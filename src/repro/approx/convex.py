"""Section 4.3 Remark: relative volume approximation for convex outputs.

For FO + POLY query outputs that are *convex* in k dimensions, a
Loewner-John ellipsoid gives a relative (c1, c2)-approximation with

    c1 = (k^k + 1) / (2 k^k) - eps,      c2 = (k^k + 1) / 2 + eps,

for arbitrarily small eps > 0 (the eps absorbs the numerical tolerance of
the ellipsoid computation).  This is the one positive approximation result
in the inexpressibility section — obtained by stepping *outside* the query
language.
"""

from __future__ import annotations


from ..geometry.ellipsoid import john_volume_estimate
from ..geometry.polyhedron import Polyhedron
from .._errors import ApproximationError, GeometryError

__all__ = ["john_band", "convex_relative_approximation"]


def john_band(dimension: int, eps: float = 0.0) -> tuple[float, float]:
    """The paper's (c1, c2) for convex bodies in R^dimension."""
    if dimension < 1:
        raise ApproximationError("dimension must be positive")
    kk = float(dimension) ** dimension
    c1 = (kk + 1.0) / (2.0 * kk) - eps
    c2 = (kk + 1.0) / 2.0 + eps
    return c1, c2


def convex_relative_approximation(
    polytope: Polyhedron, tolerance: float = 1e-7
) -> tuple[float, tuple[float, float]]:
    """Relative approximation of the volume of a bounded convex polytope.

    Returns ``(estimate, (c1, c2))``: the Loewner-John midpoint estimator
    and the guaranteed relative band it falls in.  Exactness caveat: the
    MVEE is computed in floating point; the band is the idealised one.
    """
    vertices = polytope.closure().vertices()
    if len(vertices) < polytope.dimension + 1:
        raise GeometryError("polytope is lower-dimensional or unbounded")
    points = [[float(c) for c in vertex] for vertex in vertices]
    estimate, _, _ = john_volume_estimate(points, tolerance=tolerance)
    return estimate, john_band(polytope.dimension)
