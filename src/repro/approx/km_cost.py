"""Cost model of the Karpinski-Macintyre / Koiran approximation formulas.

Section 3 of the paper shows that the derandomised VC-dimension-based
construction of [24, 25, 26] *does* give epsilon-approximation operators
with semi-algebraic outputs (Lemma 1), but that the formulas it produces
are astronomically large: for the worked example — the query

    phi(x1, x2; y1, y2) = U(x1) & U(x2) & x1 < y1 < x2 & 0 <= y2 <= y1

with a database U of n elements and eps = 1/10 — the paper counts **at
least 10^9 atomic subformulae and at least 10^11 quantifiers**.

The construction is never materialised (that is the point); this module
models its size with explicit, documented accounting so the blow-up can be
regenerated and swept over (eps, n):

1. *Plugging the database* replaces each schema atom by its finite
   definition: ``s0 = (rows per relation atom) + comparison atoms``
   (> 2n for the example).
2. The *VC dimension* of the plugged definable family is bounded by
   Proposition 6: ``d = C log2 n`` with the Goldberg-Jerrum constant C
   computed from the plugged formula's syntax.
3. The *sample size* is the Blumer et al. bound
   ``M = max((4/eps) log(2/delta), (8d/eps) log(13/eps))`` (Section 3, with
   the derandomisation's fixed confidence delta = 1/4).
4. The sampled formula quantifies over ``N = M * m`` real variables
   (m = point arity) and instantiates the plugged matrix once per sample
   point: at least ``M * s0`` atoms plus an M-term counting apparatus.
5. The *derandomisation* (along BPP in PH, Lautemann-style) wraps this in
   ``N`` existential translate blocks and one universal block:
   ``quantifiers ~ (N + 1) * N`` and ``atoms ~ N * (M * s0 + M)``.

All counts are *lower bounds* of the same kind as the paper's ("at least"),
and the model is intentionally conservative in the same direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..db.instance import FiniteInstance
from ..db.evaluation import expand_relations
from ..logic.formulas import Formula
from ..logic.metrics import count_atoms, max_degree, quantifier_rank
from ..vc.bounds import blumer_sample_size, goldberg_jerrum_constant
from .. import obs
from .._errors import ApproximationError

__all__ = ["KMCost", "km_cost", "km_cost_for_query"]

#: Fixed confidence used inside the derandomisation (any constant < 1/2 works).
DERANDOMISATION_DELTA = 0.25


@dataclass(frozen=True)
class KMCost:
    """Size accounting for one instantiation of the KM construction."""

    epsilon: float
    database_size: int
    plugged_atoms: int        # s0: atoms after plugging the database
    vc_dimension: float       # d = C log2(n)
    sample_size: int          # M
    sample_variables: int     # N = M * m
    quantifiers: int          # >= (N + 1) * N
    atoms: int                # >= N * (M * s0 + M)

    def summary(self) -> str:
        return (
            f"eps={self.epsilon:g} n={self.database_size}: "
            f"s0={self.plugged_atoms}, d={self.vc_dimension:.0f}, "
            f"M={self.sample_size:.3g}, quantifiers>={self.quantifiers:.3g}, "
            f"atoms>={self.atoms:.3g}"
        )


def km_cost(
    epsilon: float,
    plugged_atoms: int,
    point_arity: int,
    param_arity: int,
    database_size: int,
    degree: int = 1,
    quantifier_rank_value: int = 0,
    max_relation_arity: int = 1,
) -> KMCost:
    """Evaluate the cost model from raw syntactic parameters."""
    if not 0 < epsilon < 1:
        raise ApproximationError("epsilon must lie in (0, 1)")
    if plugged_atoms < 1 or point_arity < 1 or database_size < 2:
        raise ApproximationError("degenerate parameters for the cost model")
    constant = goldberg_jerrum_constant(
        k=param_arity,
        p=max_relation_arity,
        q=quantifier_rank_value,
        d=max(1, degree),
        s=plugged_atoms,
    )
    vc_dim = constant * math.log2(database_size)
    sample = blumer_sample_size(epsilon, DERANDOMISATION_DELTA, vc_dim)
    variables = sample * point_arity
    quantifiers = (variables + 1) * variables
    atoms = variables * (sample * plugged_atoms + sample)
    obs.set_gauge("km.sample_size", sample)
    obs.set_gauge("km.atoms", atoms)
    obs.set_gauge("km.quantifiers", quantifiers)
    return KMCost(
        epsilon=epsilon,
        database_size=database_size,
        plugged_atoms=plugged_atoms,
        vc_dimension=vc_dim,
        sample_size=sample,
        sample_variables=variables,
        quantifiers=quantifiers,
        atoms=atoms,
    )


def km_cost_for_query(
    query: Formula,
    instance: FiniteInstance,
    param_vars: int,
    point_vars: int,
    epsilon: float,
) -> KMCost:
    """Cost model instantiated from an actual query and finite database.

    The database is *plugged into* the query (relation atoms replaced by
    their finite encodings) and the plugged formula's syntax drives the
    model, exactly as in the paper's example.
    """
    with obs.span("approx.km_cost", epsilon=epsilon, n=instance.size()):
        plugged = expand_relations(query, instance)
        return km_cost(
        epsilon=epsilon,
        plugged_atoms=max(1, count_atoms(plugged)),
        point_arity=point_vars,
        param_arity=param_vars,
        database_size=max(2, instance.size()),
        degree=max(1, max_degree(plugged)),
        quantifier_rank_value=quantifier_rank(plugged),
        max_relation_arity=max(
            (arity for _, arity in instance.schema.relations), default=1
        ),
    )
