"""Approximate volume operators: definitions shared across the package.

Section 2 of the paper defines an epsilon-approximation operator VOL_I^eps
as one producing, for each query ``phi(x, y)``, a formula ``psi(x, z)``
such that for every parameter a: (1) ``psi(a, .)`` is satisfiable and
(2) every satisfying z is within eps of ``VOL(phi(a, D) ∩ I^n)``.

Since the paper proves such operators *cannot* be uniformly definable in
well-behaved constraint languages (Theorem 2), the library represents
approximation operators semantically: as estimator callables paired with
validity checkers.  The checkers below verify conditions (2) for the
absolute and relative notions.
"""

from __future__ import annotations

from fractions import Fraction

from .._errors import ApproximationError

__all__ = [
    "is_valid_absolute_approximation",
    "is_valid_relative_approximation",
    "epsilon_band_to_relative",
]


def is_valid_absolute_approximation(
    estimate: float | Fraction, true_volume: float | Fraction, epsilon: float
) -> bool:
    """Condition (2) of the paper's VOL_I^eps: |v - VOL| < eps."""
    if epsilon <= 0:
        raise ApproximationError("epsilon must be positive")
    return abs(float(estimate) - float(true_volume)) < epsilon


def is_valid_relative_approximation(
    estimate: float | Fraction,
    true_volume: float | Fraction,
    c1: float,
    c2: float,
) -> bool:
    """The (c1, c2)-relative notion: c1 < estimate/VOL < c2 (VOL > 0)."""
    if not 0 < c1 < c2:
        raise ApproximationError("need 0 < c1 < c2")
    volume = float(true_volume)
    if volume <= 0:
        raise ApproximationError("relative approximation needs positive volume")
    ratio = float(estimate) / volume
    return c1 < ratio < c2


def epsilon_band_to_relative(epsilon: float) -> tuple[float, float]:
    """An eps-relative approximation is a (1-eps, 1+eps)-relative one
    (Section 4.2)."""
    if not 0 <= epsilon < 1:
        raise ApproximationError("epsilon must lie in [0, 1)")
    return 1.0 - epsilon, 1.0 + epsilon
