"""Proposition 4: the trivial 1/2-approximation, definable in FO + LIN.

If a set's VOL_I is neither 0 nor 1, then 1/2 is within 1/2 of it; and the
two boundary cases are FO + LIN-definable properties ("the set contains no
open box" / "the complement contains no open box" within I^n).  Hence
VOL_I^eps for eps >= 1/2 *is* definable — and Theorem 2 shows this trivial
approximation is the best possible in such languages.

The implementation decides the two boundary cases exactly through the
semi-linear volume machinery (equivalent to the definable test, since
having empty interior and having volume zero coincide for semi-linear
sets) and returns the paper's three-valued answer.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..geometry.decomposition import formula_volume_unit_cube
from ..logic.formulas import Formula
from .._errors import ApproximationError

__all__ = ["trivial_vol_approximation"]


def trivial_vol_approximation(
    formula: Formula, variables: Sequence[str], epsilon: float = 0.5
) -> Fraction:
    """Proposition 4's approximation of VOL_I for a semi-linear set.

    Valid exactly when ``epsilon >= 1/2`` (the theorem's threshold); the
    function enforces that precondition.
    """
    if epsilon < 0.5:
        raise ApproximationError(
            "the trivial approximation is only an epsilon-approximation for "
            "epsilon >= 1/2 (and Theorem 2 shows no definable operator does "
            "better)"
        )
    volume = formula_volume_unit_cube(formula, variables)
    if volume == 0:
        return Fraction(0)
    if volume == 1:
        return Fraction(1)
    return Fraction(1, 2)
