"""Approximate aggregation operators and the KM construction cost model."""

from .operators import (
    epsilon_band_to_relative,
    is_valid_absolute_approximation,
    is_valid_relative_approximation,
)
from .trivial import trivial_vol_approximation
from .montecarlo import approximate_vol_unit_cube
from .km_cost import DERANDOMISATION_DELTA, KMCost, km_cost, km_cost_for_query
from .convex import convex_relative_approximation, john_band
from .sampled_aggregates import AggregateEstimate, sample_avg, sample_sum

__all__ = [
    "is_valid_absolute_approximation",
    "is_valid_relative_approximation",
    "epsilon_band_to_relative",
    "trivial_vol_approximation",
    "approximate_vol_unit_cube",
    "KMCost",
    "km_cost",
    "km_cost_for_query",
    "DERANDOMISATION_DELTA",
    "convex_relative_approximation",
    "john_band",
    "AggregateEstimate",
    "sample_avg",
    "sample_sum",
]
