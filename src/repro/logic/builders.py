"""Convenience constructors for building formulas in host-language syntax.

Example::

    from repro.logic import builders as b

    x, y = b.variables("x y")
    R = b.Relation("R", 2)
    phi = b.exists(y, R(x, y) & (x < y) & (y <= 1))
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from .formulas import (
    Exists,
    ExistsAdom,
    Forall,
    ForallAdom,
    Formula,
    RelAtom,
    conjunction,
    disjunction,
)
from .terms import Const, Term, Var, as_term

__all__ = [
    "variables",
    "const",
    "Relation",
    "exists",
    "forall",
    "exists_adom",
    "forall_adom",
    "land",
    "lor",
    "implies",
    "iff",
    "between",
    "in_unit_interval",
    "in_unit_cube",
]


def variables(names: str | Iterable[str]) -> tuple[Var, ...]:
    """Create variables from a space-separated string or an iterable of names."""
    if isinstance(names, str):
        names = names.split()
    return tuple(Var(name) for name in names)


def const(value) -> Const:
    """Create a rational constant term (accepts int, Fraction, or "p/q" string)."""
    if isinstance(value, str):
        return Const(Fraction(value))
    return Const(Fraction(value))


class Relation:
    """A named schema relation of fixed arity; calling it builds an atom."""

    def __init__(self, name: str, arity: int):
        if arity < 1:
            raise ValueError("relation arity must be positive")
        self.name = name
        self.arity = arity

    def __call__(self, *args) -> RelAtom:
        if len(args) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got {len(args)} arguments"
            )
        return RelAtom(self.name, tuple(as_term(a) for a in args))

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {self.arity})"


def _var_name(var: Var | str) -> str:
    return var.name if isinstance(var, Var) else var


def exists(var: Var | str | Sequence[Var | str], body: Formula) -> Formula:
    """Existentially quantify one variable or a sequence of variables."""
    if isinstance(var, (Var, str)):
        return Exists(_var_name(var), body)
    result = body
    for v in reversed(list(var)):
        result = Exists(_var_name(v), result)
    return result


def forall(var: Var | str | Sequence[Var | str], body: Formula) -> Formula:
    """Universally quantify one variable or a sequence of variables."""
    if isinstance(var, (Var, str)):
        return Forall(_var_name(var), body)
    result = body
    for v in reversed(list(var)):
        result = Forall(_var_name(v), result)
    return result


def exists_adom(var: Var | str | Sequence[Var | str], body: Formula) -> Formula:
    """Active-domain existential quantification."""
    if isinstance(var, (Var, str)):
        return ExistsAdom(_var_name(var), body)
    result = body
    for v in reversed(list(var)):
        result = ExistsAdom(_var_name(v), result)
    return result


def forall_adom(var: Var | str | Sequence[Var | str], body: Formula) -> Formula:
    """Active-domain universal quantification."""
    if isinstance(var, (Var, str)):
        return ForallAdom(_var_name(var), body)
    result = body
    for v in reversed(list(var)):
        result = ForallAdom(_var_name(v), result)
    return result


def land(*formulas: Formula) -> Formula:
    """N-ary conjunction (alias of :func:`repro.logic.formulas.conjunction`)."""
    return conjunction(*formulas)


def lor(*formulas: Formula) -> Formula:
    """N-ary disjunction (alias of :func:`repro.logic.formulas.disjunction`)."""
    return disjunction(*formulas)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Build ``antecedent -> consequent``."""
    return antecedent.implies(consequent)


def iff(left: Formula, right: Formula) -> Formula:
    """Build ``left <-> right``."""
    return left.iff(right)


def between(low, term: Term, high, strict: bool = False) -> Formula:
    """Build ``low <= term <= high`` (or strict inequalities)."""
    low_t, high_t = as_term(low), as_term(high)
    if strict:
        return conjunction(low_t < term, term < high_t)
    return conjunction(low_t <= term, term <= high_t)


def in_unit_interval(term: Term, strict: bool = False) -> Formula:
    """Build the constraint ``term in [0, 1]`` (the paper's interval I)."""
    return between(0, term, 1, strict=strict)


def in_unit_cube(terms: Sequence[Term], strict: bool = False) -> Formula:
    """Build the constraint that all *terms* lie in the unit cube I^n."""
    return conjunction(*(in_unit_interval(t, strict=strict) for t in terms))
