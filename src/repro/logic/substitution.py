"""Capture-avoiding substitution and variable renaming on terms and formulas."""

from __future__ import annotations

import itertools
from typing import Mapping

from .formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
)
from .terms import Add, Const, Mul, Neg, Pow, Term, Var

__all__ = ["substitute_term", "substitute", "rename_bound", "fresh_variable"]

_QUANTIFIER_TYPES = (Exists, Forall, ExistsAdom, ForallAdom)


def fresh_variable(taken: set[str] | frozenset[str], stem: str = "v") -> str:
    """Return a variable name based on *stem* that does not occur in *taken*."""
    if stem not in taken:
        return stem
    for i in itertools.count():
        candidate = f"{stem}_{i}"
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")


def substitute_term(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Replace variables in *term* according to *mapping* (simultaneously)."""
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, Const):
        return term
    if isinstance(term, Add):
        return Add(tuple(substitute_term(a, mapping) for a in term.args))
    if isinstance(term, Mul):
        return Mul(tuple(substitute_term(a, mapping) for a in term.args))
    if isinstance(term, Neg):
        return Neg(substitute_term(term.arg, mapping))
    if isinstance(term, Pow):
        return Pow(substitute_term(term.base, mapping), term.exponent)
    raise TypeError(f"unknown term node {type(term).__name__}")


def substitute(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Simultaneous capture-avoiding substitution of terms for free variables.

    Bound variables that would capture a variable of a substituted term are
    renamed to fresh names first.
    """
    if not mapping:
        return formula
    return _substitute(formula, dict(mapping))


def _substitute(formula: Formula, mapping: dict[str, Term]) -> Formula:
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Compare):
        return Compare(
            formula.op,
            substitute_term(formula.lhs, mapping),
            substitute_term(formula.rhs, mapping),
        )
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.name, tuple(substitute_term(a, mapping) for a in formula.args)
        )
    if isinstance(formula, And):
        return And(tuple(_substitute(a, mapping) for a in formula.args))
    if isinstance(formula, Or):
        return Or(tuple(_substitute(a, mapping) for a in formula.args))
    if isinstance(formula, Not):
        return Not(_substitute(formula.arg, mapping))
    if isinstance(formula, _QUANTIFIER_TYPES):
        inner_mapping = {k: v for k, v in mapping.items() if k != formula.var}
        if not inner_mapping:
            return formula
        # Rename the bound variable if any substituted term mentions it.
        incoming = frozenset().union(
            *(t.variables() for t in inner_mapping.values())
        )
        body = formula.body
        var = formula.var
        if var in incoming:
            taken = set(incoming) | body.free_variables() | set(inner_mapping)
            new_var = fresh_variable(taken, var)
            body = _substitute(body, {var: Var(new_var)})
            var = new_var
        return type(formula)(var, _substitute(body, inner_mapping))
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def rename_bound(formula: Formula, taken: set[str] | None = None) -> Formula:
    """Rename bound variables so that every quantifier binds a distinct name
    and no bound name collides with a free variable.

    Useful as a preprocessing step before prenexing.
    """
    if taken is None:
        taken = set(formula.free_variables())
    else:
        taken = set(taken) | set(formula.free_variables())
    return _rename(formula, taken)


def _rename(formula: Formula, taken: set[str]) -> Formula:
    if isinstance(formula, (TrueFormula, FalseFormula, Compare, RelAtom)):
        return formula
    if isinstance(formula, And):
        return And(tuple(_rename(a, taken) for a in formula.args))
    if isinstance(formula, Or):
        return Or(tuple(_rename(a, taken) for a in formula.args))
    if isinstance(formula, Not):
        return Not(_rename(formula.arg, taken))
    if isinstance(formula, _QUANTIFIER_TYPES):
        var = formula.var
        body = formula.body
        if var in taken:
            new_var = fresh_variable(taken, var)
            body = _substitute(body, {var: Var(new_var)})
            var = new_var
        taken.add(var)
        return type(formula)(var, _rename(body, taken))
    raise TypeError(f"unknown formula node {type(formula).__name__}")
