"""A small recursive-descent parser for the textual formula syntax.

The grammar accepted (case-insensitive keywords)::

    formula    :=  or_expr
    or_expr    :=  and_expr  (OR and_expr)*
    and_expr   :=  unary     (AND unary)*
    unary      :=  NOT unary
                |  (EXISTS|FORALL|EXISTSADOM|FORALLADOM) ident+ "." unary
                |  atom
    atom       :=  TRUE | FALSE
                |  ident "(" term ("," term)* ")"        -- relation atom
                |  term (cmp term)+                       -- chained comparisons
                |  "(" formula ")"
    term       :=  usual arithmetic with + - * ^ and rational literals  "3/4"

Chained comparisons such as ``0 <= x < y <= 1`` are expanded into a
conjunction.  The printer (:mod:`repro.logic.printer`) emits this syntax,
so ``parse(str(phi))`` round-trips.
"""

from __future__ import annotations

import re
from fractions import Fraction

from .formulas import (
    Compare,
    Exists,
    ExistsAdom,
    FALSE,
    Forall,
    ForallAdom,
    Formula,
    RelAtom,
    TRUE,
    conjunction,
    disjunction,
)
from .terms import Add, Const, Mul, Neg, Pow, Term, Var
from .._errors import ReproError

__all__ = ["parse", "parse_term", "ParseError"]


class ParseError(ReproError, ValueError):
    """Raised when the input text is not a well-formed formula or term.

    Also a :class:`ValueError` for backwards compatibility with callers
    that predate the :class:`ReproError` hierarchy.
    """


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+(?:/\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|<|>|=|\+|-|\*|\^|\(|\)|,|\.))"
)

_KEYWORDS = {
    "AND",
    "OR",
    "NOT",
    "TRUE",
    "FALSE",
    "EXISTS",
    "FORALL",
    "EXISTSADOM",
    "FORALLADOM",
}

_QUANTIFIER_NODE = {
    "EXISTS": Exists,
    "FORALL": Forall,
    "EXISTSADOM": ExistsAdom,
    "FORALLADOM": ForallAdom,
}

_CMP_OPS = {"<", "<=", "=", "!=", ">=", ">"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input at: {remainder[:20]!r}")
        pos = match.end()
        if match.group("number") is not None:
            tokens.append(("number", match.group("number")))
        elif match.group("ident") is not None:
            word = match.group("ident")
            if word.upper() in _KEYWORDS:
                tokens.append(("keyword", word.upper()))
            else:
                tokens.append(("ident", word))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def advance(self) -> tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> str:
        token_kind, token_value = self.peek()
        if token_kind != kind or (value is not None and token_value != value):
            expected = value if value is not None else kind
            raise ParseError(f"expected {expected!r}, got {token_value!r}")
        self.advance()
        return token_value

    # -- formulas ----------------------------------------------------------
    def formula(self) -> Formula:
        return self.or_expr()

    def or_expr(self) -> Formula:
        parts = [self.and_expr()]
        while self.peek() == ("keyword", "OR"):
            self.advance()
            parts.append(self.and_expr())
        return disjunction(*parts) if len(parts) > 1 else parts[0]

    def and_expr(self) -> Formula:
        parts = [self.unary()]
        while self.peek() == ("keyword", "AND"):
            self.advance()
            parts.append(self.unary())
        return conjunction(*parts) if len(parts) > 1 else parts[0]

    def unary(self) -> Formula:
        kind, value = self.peek()
        if kind == "keyword" and value == "NOT":
            self.advance()
            return ~self.unary()
        if kind == "keyword" and value in _QUANTIFIER_NODE:
            self.advance()
            node = _QUANTIFIER_NODE[value]
            names = [self.expect("ident")]
            while self.peek()[0] == "ident":
                names.append(self.expect("ident"))
            self.expect("op", ".")
            body = self.unary()
            for name in reversed(names):
                body = node(name, body)
            return body
        return self.atom()

    def atom(self) -> Formula:
        kind, value = self.peek()
        if kind == "keyword" and value == "TRUE":
            self.advance()
            return TRUE
        if kind == "keyword" and value == "FALSE":
            self.advance()
            return FALSE
        if kind == "ident" and self.tokens[self.pos + 1] == ("op", "("):
            return self.rel_atom()
        if kind == "op" and value == "(":
            # Ambiguous: parenthesized formula or parenthesized term in a
            # comparison.  Try the comparison reading first, backtrack on
            # failure.
            saved = self.pos
            try:
                return self.comparison()
            except ParseError:
                self.pos = saved
            self.advance()
            inner = self.formula()
            self.expect("op", ")")
            return inner
        return self.comparison()

    def rel_atom(self) -> Formula:
        name = self.expect("ident")
        self.expect("op", "(")
        args = [self.term()]
        while self.peek() == ("op", ","):
            self.advance()
            args.append(self.term())
        self.expect("op", ")")
        return RelAtom(name, tuple(args))

    def comparison(self) -> Formula:
        left = self.term()
        atoms: list[Formula] = []
        while True:
            kind, value = self.peek()
            if kind == "op" and value in _CMP_OPS:
                self.advance()
                right = self.term()
                atoms.append(Compare(value, left, right))
                left = right
            else:
                break
        if not atoms:
            raise ParseError("expected a comparison operator")
        return conjunction(*atoms) if len(atoms) > 1 else atoms[0]

    # -- terms ---------------------------------------------------------------
    def term(self) -> Term:
        return self.add_expr()

    def add_expr(self) -> Term:
        parts = [self.mul_expr()]
        while True:
            kind, value = self.peek()
            if kind == "op" and value == "+":
                self.advance()
                parts.append(self.mul_expr())
            elif kind == "op" and value == "-":
                self.advance()
                parts.append(Neg(self.mul_expr()))
            else:
                break
        return Add(tuple(parts)) if len(parts) > 1 else parts[0]

    def mul_expr(self) -> Term:
        parts = [self.pow_expr()]
        while self.peek() == ("op", "*"):
            self.advance()
            parts.append(self.pow_expr())
        return Mul(tuple(parts)) if len(parts) > 1 else parts[0]

    def pow_expr(self) -> Term:
        base = self.unary_term()
        if self.peek() == ("op", "^"):
            self.advance()
            kind, value = self.advance()
            if kind != "number" or "/" in value:
                raise ParseError("exponent must be a non-negative integer")
            return Pow(base, int(value))
        return base

    def unary_term(self) -> Term:
        kind, value = self.peek()
        if kind == "op" and value == "-":
            self.advance()
            # A negated literal is a negative constant, not Neg(Const),
            # so printed constants like (-3/7) round-trip structurally.
            next_kind, next_value = self.peek()
            if next_kind == "number":
                self.advance()
                return Const(-Fraction(next_value))
            return Neg(self.unary_term())
        return self.atom_term()

    def atom_term(self) -> Term:
        kind, value = self.advance()
        if kind == "number":
            return Const(Fraction(value))
        if kind == "ident":
            return Var(value)
        if kind == "op" and value == "(":
            inner = self.term()
            self.expect("op", ")")
            return inner
        raise ParseError(f"expected a term, got {value!r}")


def parse(text: str) -> Formula:
    """Parse *text* into a :class:`~repro.logic.formulas.Formula`."""
    parser = _Parser(text)
    result = parser.formula()
    if parser.peek()[0] != "eof":
        raise ParseError(f"trailing input: {parser.peek()[1]!r}")
    return result


def parse_term(text: str) -> Term:
    """Parse *text* into a :class:`~repro.logic.terms.Term`."""
    parser = _Parser(text)
    result = parser.term()
    if parser.peek()[0] != "eof":
        raise ParseError(f"trailing input: {parser.peek()[1]!r}")
    return result
