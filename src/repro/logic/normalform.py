"""Normal forms: negation normal form, prenex normal form, and DNF.

Negation of comparison atoms is resolved using the total order on the reals
(``not (s < t)`` becomes ``t <= s``), so NNF of a relational-atom-free
formula contains no ``Not`` nodes at all.  Negated relation atoms remain as
literals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FALSE,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TRUE,
    TrueFormula,
    conjunction,
    disjunction,
)
from .substitution import rename_bound
from .. import guard
from .._errors import NotQuantifierFree

__all__ = [
    "to_nnf",
    "to_prenex",
    "PrenexForm",
    "qf_to_dnf",
    "is_quantifier_free",
    "literals_of_conjunct",
]

_QUANTIFIERS = (Exists, Forall, ExistsAdom, ForallAdom)
_DUAL = {Exists: Forall, Forall: Exists, ExistsAdom: ForallAdom, ForallAdom: ExistsAdom}


def is_quantifier_free(formula: Formula) -> bool:
    """Return True iff *formula* contains no quantifier of either kind."""
    if isinstance(formula, _QUANTIFIERS):
        return False
    if isinstance(formula, (And, Or)):
        return all(is_quantifier_free(a) for a in formula.args)
    if isinstance(formula, Not):
        return is_quantifier_free(formula.arg)
    return True


def to_nnf(formula: Formula) -> Formula:
    """Convert to negation normal form.

    Negations are pushed to atoms; negated comparisons are replaced by the
    complementary comparison (valid over a total order), so only relation
    atoms can remain under a ``Not``.
    """
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, TrueFormula):
        return FALSE if negate else TRUE
    if isinstance(formula, FalseFormula):
        return TRUE if negate else FALSE
    if isinstance(formula, Compare):
        return formula.negated() if negate else formula
    if isinstance(formula, RelAtom):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.arg, not negate)
    if isinstance(formula, And):
        parts = tuple(_nnf(a, negate) for a in formula.args)
        return disjunction(*parts) if negate else conjunction(*parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(a, negate) for a in formula.args)
        return conjunction(*parts) if negate else disjunction(*parts)
    if isinstance(formula, _QUANTIFIERS):
        node_type = _DUAL[type(formula)] if negate else type(formula)
        return node_type(formula.var, _nnf(formula.body, negate))
    raise TypeError(f"unknown formula node {type(formula).__name__}")


@dataclass(frozen=True)
class PrenexForm:
    """A prenex normal form: a quantifier prefix over a quantifier-free matrix.

    ``prefix`` is a tuple of ``(kind, var)`` pairs where ``kind`` is one of
    the four quantifier classes, outermost first.
    """

    prefix: tuple[tuple[type, str], ...]
    matrix: Formula

    def to_formula(self) -> Formula:
        result = self.matrix
        for kind, var in reversed(self.prefix):
            result = kind(var, result)
        return result


def to_prenex(formula: Formula) -> PrenexForm:
    """Convert a formula to prenex normal form.

    The formula is first put in NNF with all bound variables renamed apart,
    after which quantifiers can be pulled out front in syntactic order.
    """
    nnf = to_nnf(rename_bound(formula))
    prefix: list[tuple[type, str]] = []
    matrix = _pull_quantifiers(nnf, prefix)
    return PrenexForm(tuple(prefix), matrix)


def _pull_quantifiers(formula: Formula, prefix: list[tuple[type, str]]) -> Formula:
    if isinstance(formula, _QUANTIFIERS):
        prefix.append((type(formula), formula.var))
        return _pull_quantifiers(formula.body, prefix)
    if isinstance(formula, And):
        return conjunction(*(_pull_quantifiers(a, prefix) for a in formula.args))
    if isinstance(formula, Or):
        return disjunction(*(_pull_quantifiers(a, prefix) for a in formula.args))
    # NNF guarantees Not only wraps relation atoms.
    return formula


def qf_to_dnf(formula: Formula, max_conjuncts: int | None = None) -> list[list[Formula]]:
    """Convert a quantifier-free formula to disjunctive normal form.

    Returns a list of conjuncts, each a list of literals (``Compare``,
    ``RelAtom`` or ``Not(RelAtom)``).  An empty list means ``FALSE``;
    a conjunct that is an empty list means ``TRUE``.

    ``max_conjuncts`` guards against exponential blow-up; exceeding it
    raises :class:`MemoryError`-flavoured ``ValueError``.
    """
    if not is_quantifier_free(formula):
        raise NotQuantifierFree("DNF conversion requires a quantifier-free formula")
    nnf = to_nnf(formula)
    dnf = _dnf(nnf)
    if max_conjuncts is not None and len(dnf) > max_conjuncts:
        raise ValueError(
            f"DNF exceeded {max_conjuncts} conjuncts ({len(dnf)} produced)"
        )
    return dnf


def _dnf(formula: Formula) -> list[list[Formula]]:
    if isinstance(formula, TrueFormula):
        return [[]]
    if isinstance(formula, FalseFormula):
        return []
    if isinstance(formula, (Compare, RelAtom)):
        return [[formula]]
    if isinstance(formula, Not):
        # NNF: Not only wraps relation atoms.
        return [[formula]]
    if isinstance(formula, Or):
        result: list[list[Formula]] = []
        for arg in formula.args:
            result.extend(_dnf(arg))
        guard.check_size(len(result))
        return result
    if isinstance(formula, And):
        parts = [_dnf(a) for a in formula.args]
        result = []
        for combo in itertools.product(*parts):
            guard.checkpoint()
            conjunct: list[Formula] = []
            for chunk in combo:
                conjunct.extend(chunk)
            result.append(conjunct)
        guard.check_size(len(result))
        return result
    raise TypeError(f"unexpected node in quantifier-free NNF: {type(formula).__name__}")


def literals_of_conjunct(conjunct: list[Formula]) -> Formula:
    """Rebuild a conjunct (list of literals) into a single formula."""
    return conjunction(*conjunct)
