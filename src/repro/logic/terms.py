"""Term language for first-order formulas over real signatures.

Terms are built from variables and rational constants with the operations
``+``, ``-``, ``*`` and non-negative integer powers.  This covers all three
signatures used in the paper:

* dense order constraints  ``(R, <)``          — variables and constants only,
* linear constraints       ``(R, +, -, 0, 1, <)`` — no products of variables,
* polynomial constraints   ``(R, +, *, 0, 1, <)`` — everything below.

Terms are immutable and hashable.  Python operators are overloaded so terms
can be written naturally::

    x, y = Var("x"), Var("y")
    t = 2 * x + y ** 2 - Fraction(1, 3)

Comparison operators on terms build atomic formulas (see
:mod:`repro.logic.formulas`).

Equality / hashing contract
---------------------------
Every node is a frozen dataclass: structural ``__eq__`` and ``__hash__``
are generated from the same fields, so equal terms hash equal (``Const``
normalises its value to :class:`~fractions.Fraction` in
``__post_init__``, so ``Const(1) == Const(Fraction(1))`` and their hashes
agree).  ``==`` is kept structural — use :meth:`Term.eq` for the logical
atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

Rational = Union[int, Fraction]

__all__ = [
    "Term",
    "Var",
    "Const",
    "Add",
    "Mul",
    "Neg",
    "Pow",
    "as_term",
    "ZERO",
    "ONE",
]


def as_term(value: "Term | Rational | str") -> "Term":
    """Coerce *value* to a :class:`Term`.

    Integers and :class:`~fractions.Fraction` become :class:`Const`; strings
    become :class:`Var`; terms pass through unchanged.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, (int, Fraction)):
        return Const(Fraction(value))
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot interpret {value!r} as a term")


class Term:
    """Abstract base class of all terms."""

    __slots__ = ()

    # -- structure ---------------------------------------------------------
    def variables(self) -> frozenset[str]:
        """Return the set of variable names occurring in this term."""
        raise NotImplementedError

    def walk(self):
        """Depth-first pre-order iterator over this term's AST."""
        from .formulas import walk_ast

        return walk_ast(self)

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        """Evaluate the term under the variable assignment *env*.

        Raises :class:`KeyError` if a variable is unbound.
        """
        raise NotImplementedError

    # -- arithmetic sugar --------------------------------------------------
    def __add__(self, other: "Term | Rational") -> "Term":
        return Add((self, as_term(other)))

    def __radd__(self, other: Rational) -> "Term":
        return Add((as_term(other), self))

    def __sub__(self, other: "Term | Rational") -> "Term":
        return Add((self, Neg(as_term(other))))

    def __rsub__(self, other: Rational) -> "Term":
        return Add((as_term(other), Neg(self)))

    def __mul__(self, other: "Term | Rational") -> "Term":
        return Mul((self, as_term(other)))

    def __rmul__(self, other: Rational) -> "Term":
        return Mul((as_term(other), self))

    def __neg__(self) -> "Term":
        return Neg(self)

    def __pow__(self, exponent: int) -> "Term":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("only non-negative integer powers are allowed")
        return Pow(self, exponent)

    # -- comparison sugar (atomic formulas) ---------------------------------
    def __lt__(self, other: "Term | Rational"):
        from .formulas import Compare

        return Compare("<", self, as_term(other))

    def __le__(self, other: "Term | Rational"):
        from .formulas import Compare

        return Compare("<=", self, as_term(other))

    def __gt__(self, other: "Term | Rational"):
        from .formulas import Compare

        return Compare(">", self, as_term(other))

    def __ge__(self, other: "Term | Rational"):
        from .formulas import Compare

        return Compare(">=", self, as_term(other))

    def eq(self, other: "Term | Rational"):
        """Build the atomic formula ``self = other``.

        (``==`` is kept as structural equality so terms can live in sets and
        dict keys; use :meth:`eq` / :meth:`ne` for the logical atoms.)
        """
        from .formulas import Compare

        return Compare("=", self, as_term(other))

    def ne(self, other: "Term | Rational"):
        """Build the atomic formula ``self != other``."""
        from .formulas import Compare

        return Compare("!=", self, as_term(other))

    def __str__(self) -> str:
        from .printer import term_to_str

        return term_to_str(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True, repr=False)
class Var(Term):
    """A first-order variable, identified by name."""

    name: str

    __slots__ = ("name",)

    def variables(self) -> frozenset[str]:
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        return Fraction(env[self.name])


@dataclass(frozen=True, repr=False)
class Const(Term):
    """A rational constant."""

    value: Fraction

    __slots__ = ("value",)

    def __post_init__(self) -> None:
        if not isinstance(self.value, Fraction):
            object.__setattr__(self, "value", Fraction(self.value))

    def variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        return self.value


@dataclass(frozen=True, repr=False)
class Add(Term):
    """A sum of two or more terms."""

    args: tuple[Term, ...]

    __slots__ = ("args",)

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise ValueError("Add needs at least two arguments")

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(a.variables() for a in self.args))

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        total = Fraction(0)
        for arg in self.args:
            total += arg.evaluate(env)
        return total


@dataclass(frozen=True, repr=False)
class Mul(Term):
    """A product of two or more terms."""

    args: tuple[Term, ...]

    __slots__ = ("args",)

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise ValueError("Mul needs at least two arguments")

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(a.variables() for a in self.args))

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        total = Fraction(1)
        for arg in self.args:
            total *= arg.evaluate(env)
        return total


@dataclass(frozen=True, repr=False)
class Neg(Term):
    """Arithmetic negation of a term."""

    arg: Term

    __slots__ = ("arg",)

    def variables(self) -> frozenset[str]:
        return self.arg.variables()

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        return -self.arg.evaluate(env)


@dataclass(frozen=True, repr=False)
class Pow(Term):
    """A term raised to a non-negative integer power."""

    base: Term
    exponent: int

    __slots__ = ("base", "exponent")

    def __post_init__(self) -> None:
        if not isinstance(self.exponent, int) or self.exponent < 0:
            raise ValueError("exponent must be a non-negative integer")

    def variables(self) -> frozenset[str]:
        return self.base.variables()

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        return self.base.evaluate(env) ** self.exponent


ZERO = Const(Fraction(0))
ONE = Const(Fraction(1))
