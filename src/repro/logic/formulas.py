"""First-order formulas over real signatures and a relational schema.

Formulas are built from

* comparison atoms between terms (``<``, ``<=``, ``=``, ``!=``, ``>=``, ``>``),
* relation atoms ``R(t1, ..., tk)`` for schema predicates,
* the boolean connectives and both flavours of quantification used in the
  paper: *natural* quantifiers ranging over all of R (``Exists`` /
  ``Forall``) and *active-domain* quantifiers ranging over the active domain
  of the input database (``ExistsAdom`` / ``ForallAdom``).

Formulas are immutable and hashable; ``&``, ``|`` and ``~`` are overloaded.

Equality / hashing contract
---------------------------
Every node is a frozen dataclass, so ``__eq__`` and ``__hash__`` are
generated together from the same field tuple: structurally equal ASTs
compare equal *and* hash equal, across every node type (the plan cache
and the canonicalizer of :mod:`repro.engine` rely on this —
``tests/logic/test_hash_consistency.py`` pins it).  Equality is
*structural*, not semantic: alpha-variants and reordered conjunctions
compare unequal here and are identified by
:func:`repro.engine.canon.canonical_formula` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Union

from .terms import Term

__all__ = [
    "Formula",
    "walk_ast",
    "TrueFormula",
    "FalseFormula",
    "TRUE",
    "FALSE",
    "Compare",
    "RelAtom",
    "And",
    "Or",
    "Not",
    "Exists",
    "Forall",
    "ExistsAdom",
    "ForallAdom",
    "conjunction",
    "disjunction",
    "COMPARISON_OPS",
    "NEGATED_OP",
    "FLIPPED_OP",
]

#: The comparison operators allowed in atoms.
COMPARISON_OPS = ("<", "<=", "=", "!=", ">=", ">")

#: Logical negation of each comparison operator.
NEGATED_OP = {
    "<": ">=",
    "<=": ">",
    "=": "!=",
    "!=": "=",
    ">=": "<",
    ">": "<=",
}

#: The operator obtained by swapping the two sides of a comparison.
FLIPPED_OP = {
    "<": ">",
    "<=": ">=",
    "=": "=",
    "!=": "!=",
    ">=": "<=",
    ">": "<",
}


def walk_ast(root: "Formula | Term") -> Iterator["Formula | Term"]:
    """Yield *root* and every sub-formula and sub-term, depth-first pre-order.

    A generic traversal hook over the AST node fields (every node is a
    dataclass), used by :mod:`repro.engine.canon` and the hashing
    regression tests; new node types are traversed automatically.
    """
    stack: list[Union[Formula, Term]] = [root]
    while stack:
        node = stack.pop()
        yield node
        children: list[Union[Formula, Term]] = []
        for field_ in fields(node):
            value = getattr(node, field_.name)
            if isinstance(value, (Formula, Term)):
                children.append(value)
            elif isinstance(value, tuple):
                children.extend(
                    item for item in value if isinstance(item, (Formula, Term))
                )
        stack.extend(reversed(children))


class Formula:
    """Abstract base class of all formulas."""

    __slots__ = ()

    def free_variables(self) -> frozenset[str]:
        """Return the set of free variable names of this formula."""
        raise NotImplementedError

    def walk(self) -> Iterator["Formula | Term"]:
        """Depth-first pre-order iterator over this formula's AST."""
        return walk_ast(self)

    def relation_names(self) -> frozenset[str]:
        """Return the names of all schema relations mentioned."""
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return conjunction(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disjunction(self, other)

    def __invert__(self) -> "Formula":
        if isinstance(self, Not):
            return self.arg
        if isinstance(self, TrueFormula):
            return FALSE
        if isinstance(self, FalseFormula):
            return TRUE
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        """Build the implication ``self -> other``."""
        return disjunction(~self, other)

    def iff(self, other: "Formula") -> "Formula":
        """Build the biconditional ``self <-> other``."""
        return conjunction(self.implies(other), other.implies(self))

    def __str__(self) -> str:
        from .printer import formula_to_str

        return formula_to_str(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True, repr=False)
class TrueFormula(Formula):
    """The formula that is always true."""

    __slots__ = ()

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def relation_names(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True, repr=False)
class FalseFormula(Formula):
    """The formula that is always false."""

    __slots__ = ()

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def relation_names(self) -> frozenset[str]:
        return frozenset()


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True, repr=False)
class Compare(Formula):
    """An atomic comparison ``lhs op rhs`` between two terms."""

    op: str
    lhs: Term
    rhs: Term

    __slots__ = ("op", "lhs", "rhs")

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def free_variables(self) -> frozenset[str]:
        return self.lhs.variables() | self.rhs.variables()

    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def negated(self) -> "Compare":
        """Return the atom equivalent to the negation of this atom over R."""
        return Compare(NEGATED_OP[self.op], self.lhs, self.rhs)

    def flipped(self) -> "Compare":
        """Return the same atom with the two sides swapped."""
        return Compare(FLIPPED_OP[self.op], self.rhs, self.lhs)


@dataclass(frozen=True, repr=False)
class RelAtom(Formula):
    """A schema-relation atom ``R(t1, ..., tk)``."""

    name: str
    args: tuple[Term, ...]

    __slots__ = ("name", "args")

    def free_variables(self) -> frozenset[str]:
        if not self.args:
            return frozenset()
        return frozenset().union(*(a.variables() for a in self.args))

    def relation_names(self) -> frozenset[str]:
        return frozenset((self.name,))


@dataclass(frozen=True, repr=False)
class And(Formula):
    """Conjunction of two or more formulas."""

    args: tuple[Formula, ...]

    __slots__ = ("args",)

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise ValueError("And needs at least two arguments")

    def free_variables(self) -> frozenset[str]:
        return frozenset().union(*(a.free_variables() for a in self.args))

    def relation_names(self) -> frozenset[str]:
        return frozenset().union(*(a.relation_names() for a in self.args))


@dataclass(frozen=True, repr=False)
class Or(Formula):
    """Disjunction of two or more formulas."""

    args: tuple[Formula, ...]

    __slots__ = ("args",)

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise ValueError("Or needs at least two arguments")

    def free_variables(self) -> frozenset[str]:
        return frozenset().union(*(a.free_variables() for a in self.args))

    def relation_names(self) -> frozenset[str]:
        return frozenset().union(*(a.relation_names() for a in self.args))


@dataclass(frozen=True, repr=False)
class Not(Formula):
    """Negation of a formula."""

    arg: Formula

    __slots__ = ("arg",)

    def free_variables(self) -> frozenset[str]:
        return self.arg.free_variables()

    def relation_names(self) -> frozenset[str]:
        return self.arg.relation_names()


class _Quantifier(Formula):
    """Common behaviour of the four quantifier nodes."""

    __slots__ = ()

    var: str
    body: Formula

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.var}

    def relation_names(self) -> frozenset[str]:
        return self.body.relation_names()


@dataclass(frozen=True, repr=False)
class Exists(_Quantifier):
    """Natural existential quantification over all of R."""

    var: str
    body: Formula

    __slots__ = ("var", "body")


@dataclass(frozen=True, repr=False)
class Forall(_Quantifier):
    """Natural universal quantification over all of R."""

    var: str
    body: Formula

    __slots__ = ("var", "body")


@dataclass(frozen=True, repr=False)
class ExistsAdom(_Quantifier):
    """Active-domain existential quantification (finite instances)."""

    var: str
    body: Formula

    __slots__ = ("var", "body")


@dataclass(frozen=True, repr=False)
class ForallAdom(_Quantifier):
    """Active-domain universal quantification (finite instances)."""

    var: str
    body: Formula

    __slots__ = ("var", "body")


def conjunction(*formulas: Formula) -> Formula:
    """Flattening, simplifying n-ary conjunction.

    ``TRUE`` conjuncts are dropped; any ``FALSE`` conjunct collapses the
    whole conjunction.  Nested ``And`` nodes are flattened.  An empty
    conjunction is ``TRUE``.
    """
    flat: list[Formula] = []
    for formula in formulas:
        if isinstance(formula, TrueFormula):
            continue
        if isinstance(formula, FalseFormula):
            return FALSE
        if isinstance(formula, And):
            flat.extend(formula.args)
        else:
            flat.append(formula)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(*formulas: Formula) -> Formula:
    """Flattening, simplifying n-ary disjunction (dual of :func:`conjunction`)."""
    flat: list[Formula] = []
    for formula in formulas:
        if isinstance(formula, FalseFormula):
            continue
        if isinstance(formula, TrueFormula):
            return TRUE
        if isinstance(formula, Or):
            flat.extend(formula.args)
        else:
            flat.append(formula)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))
