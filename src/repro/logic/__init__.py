"""First-order logic over real signatures: the syntactic substrate.

This package implements the query-language syntax of the paper: terms and
formulas of FO(SC, Omega) for the dense-order, linear (FO + LIN) and
polynomial (FO + POLY) signatures, with both natural and active-domain
quantifiers, plus normal forms, metrics, a parser and a printer.
"""

from .terms import Add, Const, Mul, Neg, Pow, Term, Var, as_term, ONE, ZERO
from .formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FALSE,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TRUE,
    TrueFormula,
    conjunction,
    disjunction,
    walk_ast,
)
from .builders import (
    Relation,
    between,
    const,
    exists,
    exists_adom,
    forall,
    forall_adom,
    iff,
    implies,
    in_unit_cube,
    in_unit_interval,
    land,
    lor,
    variables,
)
from .substitution import fresh_variable, rename_bound, substitute, substitute_term
from .normalform import (
    PrenexForm,
    is_quantifier_free,
    qf_to_dnf,
    to_nnf,
    to_prenex,
)
from .metrics import (
    atom_degree,
    count_atoms,
    count_quantifiers,
    formula_depth,
    max_degree,
    quantifier_rank,
    term_degree,
)
from .parser import ParseError, parse, parse_term
from .printer import formula_to_str, term_to_str
from .evaluate import evaluate, evaluate_compare

__all__ = [
    # terms
    "Term", "Var", "Const", "Add", "Mul", "Neg", "Pow", "as_term", "ZERO", "ONE",
    # formulas
    "Formula", "TrueFormula", "FalseFormula", "TRUE", "FALSE",
    "Compare", "RelAtom", "And", "Or", "Not",
    "Exists", "Forall", "ExistsAdom", "ForallAdom",
    "conjunction", "disjunction", "walk_ast",
    # builders
    "variables", "const", "Relation", "exists", "forall", "exists_adom",
    "forall_adom", "land", "lor", "implies", "iff", "between",
    "in_unit_interval", "in_unit_cube",
    # substitution
    "substitute", "substitute_term", "rename_bound", "fresh_variable",
    # normal forms
    "to_nnf", "to_prenex", "PrenexForm", "qf_to_dnf", "is_quantifier_free",
    # metrics
    "count_atoms", "count_quantifiers", "quantifier_rank", "formula_depth",
    "term_degree", "atom_degree", "max_degree",
    # parsing / printing
    "parse", "parse_term", "ParseError", "term_to_str", "formula_to_str",
    # evaluation
    "evaluate", "evaluate_compare",
]
