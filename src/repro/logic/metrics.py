"""Size and complexity metrics for formulas.

These metrics back the Section 3 analysis of the paper: the
Karpinski-Macintyre approximation construction produces formulas whose size
is measured in *atomic subformulae* and *quantifiers*, and the worked
example counts both.  We also provide quantifier rank (used by the
Ehrenfeucht-Fraisse machinery) and maximal polynomial degree (used by the
Goldberg-Jerrum VC bound).
"""

from __future__ import annotations

from .formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
)
from .terms import Add, Const, Mul, Neg, Pow, Term, Var

__all__ = [
    "count_atoms",
    "count_quantifiers",
    "quantifier_rank",
    "formula_depth",
    "term_degree",
    "atom_degree",
    "max_degree",
]

_QUANTIFIERS = (Exists, Forall, ExistsAdom, ForallAdom)


def count_atoms(formula: Formula) -> int:
    """Number of atomic subformulae (comparisons and relation atoms)."""
    if isinstance(formula, (Compare, RelAtom)):
        return 1
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return 0
    if isinstance(formula, (And, Or)):
        return sum(count_atoms(a) for a in formula.args)
    if isinstance(formula, Not):
        return count_atoms(formula.arg)
    if isinstance(formula, _QUANTIFIERS):
        return count_atoms(formula.body)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def count_quantifiers(formula: Formula) -> int:
    """Total number of quantifier occurrences (both kinds)."""
    if isinstance(formula, _QUANTIFIERS):
        return 1 + count_quantifiers(formula.body)
    if isinstance(formula, (And, Or)):
        return sum(count_quantifiers(a) for a in formula.args)
    if isinstance(formula, Not):
        return count_quantifiers(formula.arg)
    return 0


def quantifier_rank(formula: Formula) -> int:
    """Maximum nesting depth of quantifiers."""
    if isinstance(formula, _QUANTIFIERS):
        return 1 + quantifier_rank(formula.body)
    if isinstance(formula, (And, Or)):
        return max(quantifier_rank(a) for a in formula.args)
    if isinstance(formula, Not):
        return quantifier_rank(formula.arg)
    return 0


def formula_depth(formula: Formula) -> int:
    """Depth of the formula tree (atoms have depth 1)."""
    if isinstance(formula, (Compare, RelAtom, TrueFormula, FalseFormula)):
        return 1
    if isinstance(formula, (And, Or)):
        return 1 + max(formula_depth(a) for a in formula.args)
    if isinstance(formula, Not):
        return 1 + formula_depth(formula.arg)
    if isinstance(formula, _QUANTIFIERS):
        return 1 + formula_depth(formula.body)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def term_degree(term: Term) -> int:
    """Total degree of a term viewed as a polynomial (constants have degree 0)."""
    if isinstance(term, Var):
        return 1
    if isinstance(term, Const):
        return 0
    if isinstance(term, Add):
        return max(term_degree(a) for a in term.args)
    if isinstance(term, Mul):
        return sum(term_degree(a) for a in term.args)
    if isinstance(term, Neg):
        return term_degree(term.arg)
    if isinstance(term, Pow):
        return term_degree(term.base) * term.exponent
    raise TypeError(f"unknown term node {type(term).__name__}")


def atom_degree(atom: Compare) -> int:
    """Degree of the polynomial ``lhs - rhs`` of a comparison atom."""
    return max(term_degree(atom.lhs), term_degree(atom.rhs))


def max_degree(formula: Formula) -> int:
    """Maximal degree over all comparison atoms (1 if there are none).

    This is the ``d`` parameter of the paper's Goldberg-Jerrum constant
    ``C = 16k(p+q)(log(8edps)+1)``: "the maximal degree of a polynomial
    constraint used in the query, 1 if none is used".
    """
    best = 1
    for atom in _comparison_atoms(formula):
        best = max(best, atom_degree(atom))
    return best


def _comparison_atoms(formula: Formula):
    if isinstance(formula, Compare):
        yield formula
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            yield from _comparison_atoms(arg)
    elif isinstance(formula, Not):
        yield from _comparison_atoms(formula.arg)
    elif isinstance(formula, _QUANTIFIERS):
        yield from _comparison_atoms(formula.body)
