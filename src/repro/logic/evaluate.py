"""Direct evaluation of formulas under explicit variable assignments.

This module gives the *finite* semantics used throughout the paper's
Section 4 machinery:

* comparison atoms are decided exactly over rationals,
* relation atoms are looked up in a finite interpretation,
* active-domain quantifiers range over a supplied active domain,
* natural quantifiers may optionally be evaluated over an explicitly
  supplied finite domain (useful for testing and for the circuit
  compilation of Lemma 3); evaluating a natural quantifier over the reals
  requires quantifier elimination and lives in :mod:`repro.qe`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from .formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
)
from .._errors import EvaluationError

__all__ = ["evaluate", "evaluate_compare", "Interpretation"]

#: A finite interpretation of schema relations: name -> set of tuples.
Interpretation = Mapping[str, "set[tuple[Fraction, ...]] | frozenset[tuple[Fraction, ...]]"]


def evaluate_compare(atom: Compare, env: Mapping[str, Fraction]) -> bool:
    """Decide a comparison atom under *env* using exact rational arithmetic."""
    lhs = atom.lhs.evaluate(env)
    rhs = atom.rhs.evaluate(env)
    if atom.op == "<":
        return lhs < rhs
    if atom.op == "<=":
        return lhs <= rhs
    if atom.op == "=":
        return lhs == rhs
    if atom.op == "!=":
        return lhs != rhs
    if atom.op == ">=":
        return lhs >= rhs
    if atom.op == ">":
        return lhs > rhs
    raise AssertionError(f"unknown comparison operator {atom.op!r}")


def evaluate(
    formula: Formula,
    env: Mapping[str, Fraction] | None = None,
    relations: Interpretation | None = None,
    adom: Iterable[Fraction] | None = None,
    domain: Iterable[Fraction] | None = None,
) -> bool:
    """Evaluate *formula* to a boolean.

    Parameters
    ----------
    env:
        Assignment for the free variables (values coerced to ``Fraction``).
    relations:
        Finite interpretation for relation atoms.
    adom:
        The range of active-domain quantifiers.
    domain:
        If given, natural quantifiers range over this finite set; if absent,
        encountering a natural quantifier raises :class:`EvaluationError`.
    """
    env = {k: Fraction(v) for k, v in (env or {}).items()}
    adom_list = tuple(Fraction(a) for a in adom) if adom is not None else None
    domain_list = tuple(Fraction(a) for a in domain) if domain is not None else None
    return _eval(formula, env, relations or {}, adom_list, domain_list)


def _eval(
    formula: Formula,
    env: dict[str, Fraction],
    relations: Interpretation,
    adom: tuple[Fraction, ...] | None,
    domain: tuple[Fraction, ...] | None,
) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Compare):
        return evaluate_compare(formula, env)
    if isinstance(formula, RelAtom):
        if formula.name not in relations:
            raise EvaluationError(f"no interpretation for relation {formula.name!r}")
        point = tuple(arg.evaluate(env) for arg in formula.args)
        return point in relations[formula.name]
    if isinstance(formula, And):
        return all(_eval(a, env, relations, adom, domain) for a in formula.args)
    if isinstance(formula, Or):
        return any(_eval(a, env, relations, adom, domain) for a in formula.args)
    if isinstance(formula, Not):
        return not _eval(formula.arg, env, relations, adom, domain)
    if isinstance(formula, (ExistsAdom, ForallAdom)):
        if adom is None:
            raise EvaluationError(
                "active-domain quantifier encountered but no active domain given"
            )
        return _eval_quantifier(formula, adom, env, relations, adom, domain)
    if isinstance(formula, (Exists, Forall)):
        if domain is None:
            raise EvaluationError(
                "natural quantifier encountered; supply a finite domain or use "
                "quantifier elimination (repro.qe) for evaluation over R"
            )
        return _eval_quantifier(formula, domain, env, relations, adom, domain)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def _eval_quantifier(
    formula,
    values: tuple[Fraction, ...],
    env: dict[str, Fraction],
    relations: Interpretation,
    adom: tuple[Fraction, ...] | None,
    domain: tuple[Fraction, ...] | None,
) -> bool:
    existential = isinstance(formula, (Exists, ExistsAdom))
    saved = env.get(formula.var)
    had = formula.var in env
    try:
        for value in values:
            env[formula.var] = value
            result = _eval(formula.body, env, relations, adom, domain)
            if existential and result:
                return True
            if not existential and not result:
                return False
        return not existential
    finally:
        if had:
            env[formula.var] = saved  # type: ignore[assignment]
        else:
            env.pop(formula.var, None)
