"""Pretty-printing of terms and formulas to a readable text syntax.

The produced syntax round-trips through :mod:`repro.logic.parser`.
"""

from __future__ import annotations

from fractions import Fraction

from .formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
)
from .terms import Add, Const, Mul, Neg, Pow, Term, Var

__all__ = ["term_to_str", "formula_to_str"]

# Term precedence levels: additive < multiplicative < unary < power < atom.
_PREC_ADD = 1
_PREC_MUL = 2
_PREC_NEG = 3
_PREC_POW = 4
_PREC_ATOM = 5


def term_to_str(term: Term) -> str:
    """Render a term."""
    return _term(term, 0)


def _term(term: Term, parent_prec: int) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return _const(term.value)
    if isinstance(term, Add):
        parts = []
        for i, arg in enumerate(term.args):
            if i > 0 and isinstance(arg, Neg):
                parts.append(f"- {_term(arg.arg, _PREC_ADD + 1)}")
            elif i > 0:
                parts.append(f"+ {_term(arg, _PREC_ADD)}")
            else:
                parts.append(_term(arg, _PREC_ADD))
        text = " ".join(parts)
        return f"({text})" if parent_prec > _PREC_ADD else text
    if isinstance(term, Mul):
        text = " * ".join(_term(a, _PREC_MUL) for a in term.args)
        return f"({text})" if parent_prec > _PREC_MUL else text
    if isinstance(term, Neg):
        text = f"-{_term(term.arg, _PREC_NEG)}"
        return f"({text})" if parent_prec > _PREC_NEG else text
    if isinstance(term, Pow):
        text = f"{_term(term.base, _PREC_POW + 1)}^{term.exponent}"
        return f"({text})" if parent_prec > _PREC_POW else text
    raise TypeError(f"unknown term node {type(term).__name__}")


def _const(value: Fraction) -> str:
    if value.denominator == 1:
        if value < 0:
            return f"({value.numerator})"
        return str(value.numerator)
    if value < 0:
        return f"({value.numerator}/{value.denominator})"
    return f"{value.numerator}/{value.denominator}"


# Formula precedence: OR < AND < NOT/quantifier < atom.
_FPREC_OR = 1
_FPREC_AND = 2
_FPREC_NOT = 3


def formula_to_str(formula: Formula) -> str:
    """Render a formula."""
    return _formula(formula, 0)


def _formula(formula: Formula, parent_prec: int) -> str:
    if isinstance(formula, TrueFormula):
        return "TRUE"
    if isinstance(formula, FalseFormula):
        return "FALSE"
    if isinstance(formula, Compare):
        return f"{term_to_str(formula.lhs)} {formula.op} {term_to_str(formula.rhs)}"
    if isinstance(formula, RelAtom):
        args = ", ".join(term_to_str(a) for a in formula.args)
        return f"{formula.name}({args})"
    if isinstance(formula, And):
        text = " AND ".join(_formula(a, _FPREC_AND) for a in formula.args)
        return f"({text})" if parent_prec > _FPREC_AND else text
    if isinstance(formula, Or):
        text = " OR ".join(_formula(a, _FPREC_OR) for a in formula.args)
        return f"({text})" if parent_prec > _FPREC_OR else text
    if isinstance(formula, Not):
        return f"NOT {_formula(formula.arg, _FPREC_NOT)}"
    if isinstance(formula, Exists):
        return _quantified("EXISTS", formula, parent_prec)
    if isinstance(formula, Forall):
        return _quantified("FORALL", formula, parent_prec)
    if isinstance(formula, ExistsAdom):
        return _quantified("EXISTSADOM", formula, parent_prec)
    if isinstance(formula, ForallAdom):
        return _quantified("FORALLADOM", formula, parent_prec)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def _quantified(keyword: str, formula, parent_prec: int) -> str:
    text = f"{keyword} {formula.var}. {_formula(formula.body, _FPREC_NOT)}"
    return f"({text})" if parent_prec > 0 else text
