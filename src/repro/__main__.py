"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``demo``        run a compact end-to-end demonstration (default)
``volume``      exact VOL_I of a formula given on the command line
``approx``      Monte Carlo (epsilon, delta)-approximation of VOL_I
``batch``       run a JSONL manifest of queries through the engine's
                batch executor (``--workers N`` process workers, per-task
                budgets, JSONL results out; ``--trace-out PATH`` harvests
                per-task telemetry into a merged trace file;
                ``--plan-store PATH`` shares compiled plans across
                processes and runs, ``--compile-only`` prewarms it, and
                ``--shard I/N`` splits a manifest across machines; see
                docs/ENGINE.md)
``metrics``     render Prometheus text-format metrics from a
                ``--trace-out`` file (offline replay), from a manifest
                (runs it with telemetry harvesting on), or from ``-``
                (either format on stdin)
``serve``       run the async HTTP query service: ``POST /v1/query`` /
                ``/v1/batch`` against a worker pool with admission
                control, compile coalescing, live ``GET /metrics``, and
                graceful drain on SIGTERM (see docs/SERVING.md)
``experiments`` list the paper-reproduction experiments and how to run them
``trace``       run any subcommand with observability on (= ``--stats``)

Global options
--------------
``--stats``     print the span tree and counter table after the command
``--json PATH`` append one JSON-lines observability record to PATH
``--seed N``    seed for the explicit ``numpy`` generator threaded into
                every sampling path (default 0), making traced runs
                reproducible
``--timeout S`` wall-clock budget in seconds (see docs/ROBUSTNESS.md)
``--max-cells N`` CAD / decomposition cell budget
``--fallback {off,auto,approx-only}``
                degradation policy for ``volume``: ``auto`` falls back to
                a coarser exact strategy and then to Monte Carlo when the
                budget trips; ``off`` (default) propagates the exhaustion.
                For ``batch``, the policy (and ``--timeout``/``--max-cells``)
                applies per task

Exit codes
----------
``0`` success · ``2`` query error (:class:`~repro.ReproError`) ·
``3`` budget exhausted (:class:`~repro.guard.BudgetExceeded`)
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from repro import ReproError, guard
from repro.guard import BudgetExceeded


def _rng(seed: int):
    import numpy as np

    return np.random.default_rng(seed)


def _demo(args: argparse.Namespace) -> None:
    from repro.approx import approximate_vol_unit_cube
    from repro.core import sum_of_endpoints, volume_of_query
    from repro.db import FRInstance, FiniteInstance, Schema, output_formula
    from repro.logic import Relation, exists, exists_adom, variables
    from repro.qe.cad import decide

    x, y = variables("x y")
    S = Relation("S", 2)
    db = FRInstance.make(
        Schema.make({"S": 2}), {"S": ((x, y), (0 <= y) & (y <= x) & (x <= 1))}
    )
    print("repro: Benedikt & Libkin, PODS 1999 — FO + POLY + SUM")
    print()
    print("database   S(x, y) :=", db.definition("S")[1])
    query = S(x, y) & (y <= Fraction(1, 4))
    print("query      S(x, y) AND y <= 1/4")
    print("closure    ->", output_formula(query, db))
    print("volume     ->", volume_of_query(query, db, ("x", "y")), "(exact, Theorem 3)")
    # The same query with S expanded by hand: quantifier-free, samplable.
    expanded = (y <= Fraction(1, 4)) & (0 <= y) & (y <= x) & (x <= 1)
    estimate = approximate_vol_unit_cube(
        expanded, ("x", "y"), epsilon=0.05, delta=0.05, rng=_rng(args.seed)
    )
    print(f"MC approx  -> {estimate.estimate:.4f} +- "
          f"{estimate.confidence_radius:.4f} "
          f"({estimate.samples} samples, seed {args.seed})")
    points = FiniteInstance.make(Schema.make({"P": 1}), {"P": [1, 2, 3]})
    P = Relation("P", 1)
    body = exists_adom(y, P(y) & (0 < x) & (x < y))
    print("END sum    ->", sum_of_endpoints(points, x, body),
          "(sum of interval endpoints, Section 5 example)")
    sqrt2 = exists(x, (x * x).eq(2) & (0 < x) & (x < 2))
    print("CAD        -> exists x (x^2 = 2 AND 0 < x < 2) is",
          decide(sqrt2), "(FO + POLY decision)")
    print()
    print("more: examples/*.py, DESIGN.md, EXPERIMENTS.md, docs/OBSERVABILITY.md")


def _volume(args: argparse.Namespace) -> None:
    from repro.geometry import formula_volume_unit_cube
    from repro.logic import parse

    formula = parse(args.formula)
    names = sorted(formula.free_variables())
    joined = ", ".join(names)
    if args.fallback == "off":
        with guard.govern(args.budget):
            volume = formula_volume_unit_cube(formula, names)
        print(f"VOL_I({args.formula}) over {joined} = {volume} = {float(volume)}")
        return

    from repro.guard import robust_volume

    result = robust_volume(
        formula, names, epsilon=args.epsilon, delta=args.delta,
        budget=args.budget, policy=args.fallback, rng=_rng(args.seed),
    )
    if result.mode == "approximate":
        print(
            f"VOL_I({args.formula}) over {joined} ~= {result.value:.6f} "
            f"+- {result.confidence_radius:.6f} "
            f"(mode={result.mode}, {result.samples} samples, "
            f"eps={result.epsilon:g}, delta={result.delta:g}, seed={args.seed})"
        )
    else:
        print(
            f"VOL_I({args.formula}) over {joined} = {result.value} "
            f"= {float(result.value)} (mode={result.mode})"
        )
    for mode, error in result.attempts:
        print(f"  [{mode} abandoned: {error.resource} budget exceeded]",
              file=sys.stderr)


def _approx(args: argparse.Namespace) -> None:
    from repro.approx import approximate_vol_unit_cube
    from repro.logic import parse

    formula = parse(args.formula)
    names = sorted(formula.free_variables())
    estimate = approximate_vol_unit_cube(
        formula, names, epsilon=args.epsilon, delta=args.delta,
        rng=_rng(args.seed),
    )
    print(
        f"VOL_I({args.formula}) ~= {estimate.estimate:.6f} "
        f"+- {estimate.confidence_radius:.6f} "
        f"({estimate.hits}/{estimate.samples} hits, "
        f"eps={args.epsilon:g}, delta={args.delta:g}, seed={args.seed})"
    )


def _read_input_lines(path: str) -> tuple[list[str], str]:
    """Slurp a JSONL input (``-`` = stdin) into ``(lines, display name)``.

    Stdin is read exactly once here, so callers can both sniff the
    format and parse from the same lines.
    """
    if path == "-":
        return sys.stdin.readlines(), "<stdin>"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.readlines(), path
    except OSError as error:
        raise ReproError(f"cannot read {path}: {error}") from error


def _parse_manifest_lines(lines: list[str], where: str) -> list[dict]:
    """Parse JSONL manifest lines into normalized tasks.

    Blank lines and ``#`` comments are skipped; a malformed line is a
    :class:`ReproError` naming the source and line number.
    """
    import json

    from repro.engine import normalize_task

    tasks = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(f"{where}:{lineno}: not valid JSON: {error}") from error
        tasks.append(normalize_task(raw, len(tasks)))
    return tasks


def _read_manifest(path: str) -> list[dict]:
    """Read a JSONL task manifest (``-`` = stdin) into normalized tasks."""
    lines, where = _read_input_lines(path)
    return _parse_manifest_lines(lines, where)


def _parse_shard(spec: str) -> tuple[int, int]:
    """Parse ``--shard I/N`` into ``(index, count)``; raises ReproError."""
    import re

    match = re.fullmatch(r"(\d+)/(\d+)", spec.strip())
    if not match:
        raise ReproError(f"--shard must look like I/N (e.g. 0/4), got {spec!r}")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or index >= count:
        raise ReproError(f"--shard index must satisfy 0 <= I < N, got {spec}")
    return index, count


def _shard_slice(
    tasks: list[dict], index: int, count: int
) -> tuple[list[dict], list[dict]]:
    """Shard *index* of *count*: ``(skipped prefix, contiguous slice)``.

    Tasks keep their *global* manifest indices, so per-task seeds — and
    therefore results — match the unsharded run exactly, and the shard
    outputs concatenate (in shard order) to the unsharded output.  The
    prefix is returned so its content hashes can seed cache provenance
    (a plan first compiled by an earlier shard is a "hit" here, exactly
    as it would be mid-way through the unsharded run).
    """
    total = len(tasks)
    start, end = index * total // count, (index + 1) * total // count
    return tasks[:start], tasks[start:end]


def _batch(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.engine import DEFAULT_CACHE, run_batch

    if args.plan_store and args.plan_cache:
        raise ReproError(
            "--plan-store and --plan-cache are mutually exclusive "
            "(the store subsumes spill files; see docs/ENGINE.md)"
        )
    if args.compile_only and not (args.plan_store or args.plan_cache):
        raise ReproError(
            "--compile-only needs --plan-store (or --plan-cache): "
            "prewarmed plans must land somewhere that outlives the run"
        )
    if args.resume and not args.journal:
        raise ReproError("--resume needs --journal PATH (nothing to replay)")

    tasks = _read_manifest(args.manifest)
    seen_keys: list[str] = []
    if args.shard is not None:
        from repro.engine import task_key

        index, count = _parse_shard(args.shard)
        total = len(tasks)
        prefix, tasks = _shard_slice(tasks, index, count)
        seen_keys = [k for k in map(task_key, prefix) if k is not None]
        print(f"batch: shard {index}/{count}: tasks "
              f"{tasks[0]['index'] if tasks else '-'}.."
              f"{tasks[-1]['index'] if tasks else '-'} "
              f"({len(tasks)} of {total})", file=sys.stderr)
    collect_obs = args.trace_out is not None
    if collect_obs and args.plan_store:
        print("batch: note: --trace-out tasks compile privately, bypassing "
              "--plan-store (telemetry must not depend on scheduling)",
              file=sys.stderr)

    if args.plan_cache and os.path.exists(args.plan_cache):
        loaded = DEFAULT_CACHE.load(args.plan_cache)
        print(f"batch: loaded {loaded} plans from {args.plan_cache}",
              file=sys.stderr)

    store_before = None
    if args.plan_store:
        from repro.engine import PlanStore

        with PlanStore(args.plan_store) as store:
            store_before = {"plans": len(store), **store.stats_snapshot()}
            hist_before = store.fetch_hist_snapshot()

    import time

    start = time.perf_counter()
    if args.resume and os.path.exists(args.journal):
        print(f"batch: resuming from journal {args.journal}", file=sys.stderr)
    results = run_batch(
        tasks, workers=args.workers, seed=args.seed, timeout=args.timeout,
        max_cells=args.max_cells, fallback=args.fallback,
        epsilon=args.epsilon, delta=args.delta, collect_obs=collect_obs,
        plan_store=args.plan_store, compile_only=args.compile_only,
        seen_keys=seen_keys, max_retries=args.max_retries,
        hang_timeout_s=args.hang_timeout, chaos=args.chaos,
        journal=args.journal, resume=args.resume,
    )
    wall = time.perf_counter() - start

    store_metrics = None
    if args.plan_store:
        from repro.engine import PlanStore

        with PlanStore(args.plan_store) as store:
            store_after = {"plans": len(store), **store.stats_snapshot()}
            store_hist = store.fetch_hist_snapshot()
        delta = {
            name: store_after[name] - store_before[name]
            for name in store_before
        }
        # Surfaced in the --json summary row too (not just this stderr
        # line), so store traffic survives into machine-readable output.
        args.batch_store_delta = {
            "path": args.plan_store,
            "plans": store_after["plans"],
            **{name: delta[name] for name in (
                "hits", "misses", "publishes", "compiles", "races",
                "stale_claims",
            )},
        }
        print(
            f"batch: plan store {args.plan_store}: {store_after['plans']} "
            f"plans ({delta['plans']:+d}), store-hits={delta['hits']}, "
            f"misses={delta['misses']}, compiles={delta['compiles']}, "
            f"races={delta['races']}, stale-claims={delta['stale_claims']}",
            file=sys.stderr,
        )
        store_metrics = {
            "counters": {
                f"engine.store.{name}": value for name, value in (
                    ("hit", delta["hits"]), ("miss", delta["misses"]),
                    ("publish", delta["publishes"]),
                    ("compile", delta["compiles"]), ("race", delta["races"]),
                    ("stale_claims", delta["stale_claims"]),
                ) if value
            },
            "gauges": {"engine.store.plans": store_after["plans"]},
        }
        from repro.engine.executor import _hist_delta

        hist_delta = _hist_delta(hist_before, store_hist)
        if hist_delta.count:
            store_metrics["histograms"] = {
                "engine.store.fetch_s": hist_delta.as_dict()
            }

    if args.trace_out is not None:
        from repro.obs.aggregate import summary_record, task_record

        try:
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                for task, record in zip(tasks, results):
                    handle.write(
                        json.dumps(
                            task_record(record, task["index"]), sort_keys=True
                        )
                        + "\n"
                    )
                handle.write(
                    json.dumps(
                        summary_record(
                            results,
                            extra={"workers": args.workers, "wall_s": wall},
                            extra_metrics=store_metrics,
                        ),
                        sort_keys=True,
                    )
                    + "\n"
                )
        except OSError as error:
            raise ReproError(f"cannot write {args.trace_out}: {error}") from error
        print(f"batch: wrote {len(results) + 1} telemetry records to "
              f"{args.trace_out}", file=sys.stderr)
        # The harvested snapshots are telemetry, not query results.
        for record in results:
            record.pop("obs", None)

    out = sys.stdout if args.out is None else open(args.out, "w", encoding="utf-8")
    try:
        for record in results:
            out.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()

    if args.plan_cache:
        spilled = DEFAULT_CACHE.spill(args.plan_cache, append=False)
        print(f"batch: spilled {spilled} plans to {args.plan_cache}",
              file=sys.stderr)
    tally = {"ok": 0, "budget-exceeded": 0, "error": 0}
    for record in results:
        tally[record.get("status", "error")] = (
            tally.get(record.get("status", "error"), 0) + 1
        )
    quarantined = (
        f", quarantined={tally['quarantined']}" if tally.get("quarantined")
        else ""
    )
    print(
        f"batch: {len(results)} tasks in {wall:.3f}s "
        f"({args.workers} worker{'s' if args.workers != 1 else ''}): "
        f"ok={tally['ok']}, budget-exceeded={tally['budget-exceeded']}, "
        f"error={tally['error']}{quarantined}",
        file=sys.stderr,
    )


def _metrics(args: argparse.Namespace) -> None:
    """Render Prometheus text-format metrics from a trace file or manifest.

    The input is sniffed: JSONL whose first record carries a
    ``repro.obs/*`` schema is replayed offline (no queries run); anything
    else is treated as a task manifest and executed with telemetry
    harvesting on, then the merged registry is rendered.  ``-`` reads
    either format from stdin — the pipe-friendly form, e.g.
    ``repro batch m.jsonl --trace-out /dev/stdout | repro metrics -``.
    """
    from repro import obs
    from repro.obs.aggregate import merged_registry

    lines, where = _read_input_lines(args.input)
    if _sniff_trace_lines(lines):
        records = obs.read_jsonl_lines(lines, where)
        if records.skipped:
            print(f"metrics: skipped {records.skipped} unreadable record"
                  f"{'s' if records.skipped != 1 else ''} in {where}",
                  file=sys.stderr)
        registry = obs.registry_from_records(records)
    else:
        from repro.engine import run_batch

        tasks = _parse_manifest_lines(lines, where)
        results = run_batch(
            tasks, workers=args.workers, seed=args.seed,
            timeout=args.timeout, max_cells=args.max_cells,
            fallback=args.fallback, collect_obs=True,
        )
        registry = merged_registry(results)

    text = obs.render_prometheus(registry, exemplars=args.exemplars)
    if args.out is None:
        sys.stdout.write(text)
    else:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as error:
            raise ReproError(f"cannot write {args.out}: {error}") from error


def _sniff_trace_lines(lines: list[str]) -> bool:
    """True when JSONL *lines* look like an observability trace file.

    Decided from the first non-blank, non-comment line: a JSON object
    whose ``schema`` is a ``repro.obs/*`` string.  Manifests (task dicts
    without a schema key) fall through to False.
    """
    import json

    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return False
        return (
            isinstance(record, dict)
            and isinstance(record.get("schema"), str)
            and record["schema"].startswith("repro.obs/")
        )
    return False


def _serve_cmd(args: argparse.Namespace) -> None:
    """Run the async HTTP query service until a drain signal lands."""
    from repro import obs
    from repro.serve import ServeConfig, run_server

    # /metrics is a first-class route, so counting is on for the
    # server's lifetime regardless of --stats.
    obs.enable_counting()
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        seed=args.seed,
        plan_store=args.plan_store,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        request_timeout=(
            args.request_timeout if args.request_timeout > 0 else None
        ),
        drain_timeout=args.drain_timeout,
        max_body=args.max_body,
        max_cells=args.max_cells,
        fallback=args.fallback,
        epsilon=args.epsilon,
        delta=args.delta,
        access_log=not args.no_access_log,
        slow_query_s=args.slow_query_s,
        slow_query_log=args.slow_query_log,
        exemplars=not args.no_exemplars,
    )
    run_server(config)


def _top_cmd(args: argparse.Namespace) -> int:
    """Poll a live /metrics endpoint and render the one-screen view."""
    from repro.obs.top import run_top

    return run_top(args.url, interval=args.interval, once=args.once)


def _trace_perfetto(args: argparse.Namespace) -> int:
    """Convert a JSONL trace / slow-query file to Chrome trace-event JSON."""
    from repro import obs

    rest = [part for part in args.rest if part != "--"]
    if len(rest) != 1:
        print("usage: repro trace --perfetto OUT INPUT.jsonl",
              file=sys.stderr)
        return 2
    try:
        records = obs.read_jsonl(rest[0])
    except OSError as error:
        print(f"repro: cannot read {rest[0]}: {error}", file=sys.stderr)
        return 2
    if records.skipped:
        print(f"trace: skipped {records.skipped} unreadable record"
              f"{'s' if records.skipped != 1 else ''} in {rest[0]}",
              file=sys.stderr)
    document = obs.render_perfetto(records)
    try:
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    except OSError as error:
        print(f"repro: cannot write {args.perfetto}: {error}",
              file=sys.stderr)
        return 2
    lanes = sum(
        1 for event in obs.perfetto_json(records)["traceEvents"]
        if event.get("ph") == "M"
    )
    print(f"trace: wrote {lanes} timeline lane"
          f"{'s' if lanes != 1 else ''} to {args.perfetto} "
          f"(open at https://ui.perfetto.dev)", file=sys.stderr)
    return 0


def _experiments() -> None:
    rows = [
        ("E1", "Section 3 blow-up example", "bench_e1_km_blowup.py"),
        ("E2", "VC sample bound", "bench_e2_sample_bounds.py"),
        ("E3", "separating sentences / AVG reduction", "bench_e3_separating.py"),
        ("E4", "trivial 1/2-approximation (Prop 4)", "bench_e4_trivial.py"),
        ("E5", "good instances + AC0 failure (Thm 2)", "bench_e5_good_instances.py"),
        ("E6", "VCdim >= log |D| (Prop 5)", "bench_e6_vcdim_growth.py"),
        ("E7", "Loewner-John convex band", "bench_e7_lowner_john.py"),
        ("E8", "polygon area SUM term (Sec 5)", "bench_e8_polygon_area.py"),
        ("E9", "exact semi-linear volumes (Thm 3)", "bench_e9_semilinear_volume.py"),
        ("E10", "uniform witness sampling (Thm 4)", "bench_e10_witness_volume.py"),
        ("A1", "ablation: FM pruning", "bench_a1_fm_prune.py"),
    ]
    print("experiments (run: pytest benchmarks/ --benchmark-only -s):")
    for key, title, module in rows:
        print(f"  {key:<4} {title:<42} benchmarks/{module}")


def _build_parser() -> argparse.ArgumentParser:
    # SUPPRESS defaults: absent flags leave no attribute behind, so a
    # subcommand's parse cannot clobber a value given before the
    # subcommand (argparse copies the subparser namespace wholesale).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--stats", action="store_true", default=argparse.SUPPRESS,
        help="print the span tree and counter table after the command",
    )
    common.add_argument(
        "--json", metavar="PATH", default=argparse.SUPPRESS,
        help="append one JSON-lines observability record to PATH",
    )
    common.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS,
        help="seed for the numpy generator used by sampling paths (default 0)",
    )
    common.add_argument(
        "--timeout", type=float, metavar="SECONDS", default=argparse.SUPPRESS,
        help="wall-clock budget; exhaustion exits 3 (or degrades, see --fallback)",
    )
    common.add_argument(
        "--max-cells", type=int, metavar="N", default=argparse.SUPPRESS,
        help="budget for CAD stack cells / convex decomposition cells",
    )
    common.add_argument(
        "--fallback", choices=("off", "auto", "approx-only"),
        default=argparse.SUPPRESS,
        help="degradation policy for volume: off (default) propagates budget "
        "exhaustion; auto retries a coarser exact strategy then Monte Carlo; "
        "approx-only skips the exact attempts",
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        parents=[common],
        description="Reproduction of 'Exact and Approximate Aggregation in "
        "Constraint Query Languages' (PODS 1999)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser(
        "demo", parents=[common], help="compact end-to-end demonstration"
    )
    volume = sub.add_parser(
        "volume", parents=[common], help="exact VOL_I of a linear formula"
    )
    volume.add_argument("formula", help='e.g. "0 <= y AND y <= x AND x <= 1"')
    volume.add_argument(
        "--epsilon", type=float, default=0.05,
        help="accuracy target sizing the Monte Carlo fallback (default 0.05)",
    )
    volume.add_argument(
        "--delta", type=float, default=0.05,
        help="failure probability of the Monte Carlo fallback (default 0.05)",
    )
    approx = sub.add_parser(
        "approx", parents=[common],
        help="Monte Carlo (epsilon, delta)-approximation of VOL_I",
    )
    approx.add_argument("formula", help='e.g. "0 <= y AND y <= x AND x <= 1"')
    approx.add_argument("--epsilon", type=float, default=0.05)
    approx.add_argument("--delta", type=float, default=0.05)
    batch = sub.add_parser(
        "batch", parents=[common],
        help="run a JSONL manifest of queries through the batch executor",
    )
    batch.add_argument(
        "manifest",
        help="JSONL manifest path, or '-' for stdin; one task per line, "
        'e.g. {"id": "q1", "op": "volume", "formula": "x <= 1 AND 0 <= x"}',
    )
    batch.add_argument(
        "--out", metavar="PATH", default=None,
        help="write JSONL results here instead of stdout",
    )
    batch.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="process workers for CPU-bound compilation (default 1 = serial, "
        "in-process, shared plan cache)",
    )
    batch.add_argument(
        "--plan-cache", metavar="PATH", default=None,
        help="warm-cache spill file: loaded before the batch if it exists, "
        "rewritten after it",
    )
    batch.add_argument(
        "--plan-store", metavar="PATH", default=None,
        help="cross-process shared plan store (SQLite, created on first "
        "use): every worker compiles through it, so each distinct query "
        "shape is compiled at most once batch-wide — and prewarmed stores "
        "skip compilation entirely (mutually exclusive with --plan-cache)",
    )
    batch.add_argument(
        "--compile-only", action="store_true", default=False,
        help="prepare (and publish to --plan-store) every task's plan "
        "without evaluating anything: the prewarming mode",
    )
    batch.add_argument(
        "--shard", metavar="I/N", default=None,
        help="run only the I-th of N contiguous manifest shards (0-based); "
        "per-task seeds use global manifest indices, so shard outputs "
        "concatenate to the unsharded run",
    )
    batch.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="harvest per-task telemetry (counters, histograms, spans) and "
        "write one merged JSONL record per task plus a run summary here",
    )
    batch.add_argument(
        "--journal", metavar="PATH", default=None,
        help="append every completed task to this repro.engine.journal/v1 "
        "JSONL file (fsynced per record), so an interrupted run can be "
        "resumed with --resume; use one journal per shard",
    )
    batch.add_argument(
        "--resume", action="store_true", default=False,
        help="replay --journal and run only the unfinished tasks; the "
        "combined output is byte-identical to an uninterrupted run "
        "(same manifest, seed, and flags required)",
    )
    batch.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="transient-failure retries (worker death) per task before it "
        "is quarantined and the batch moves on (default 2)",
    )
    batch.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="SIGKILL a worker whose task has been in flight this long "
        "(off by default; arm only above the worst-case task runtime)",
    )
    batch.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="deterministic fault injection for testing: kill:IDX[*TIMES] "
        "(SIGKILL the worker at task IDX), hang:IDX[*TIMES], abort:N "
        "(crash this run after N completions; resume via --journal), "
        "comma-separated",
    )
    batch.add_argument(
        "--epsilon", type=float, default=0.05,
        help="default accuracy target for approx/fallback tasks (default 0.05)",
    )
    batch.add_argument(
        "--delta", type=float, default=0.05,
        help="default failure probability for approx/fallback tasks "
        "(default 0.05)",
    )
    metrics = sub.add_parser(
        "metrics", parents=[common],
        help="render Prometheus text-format metrics from a trace file "
        "or a task manifest",
    )
    metrics.add_argument(
        "input",
        help="a batch --trace-out JSONL file (replayed offline) or a task "
        "manifest (run with telemetry harvesting on)",
    )
    metrics.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the exposition text here instead of stdout",
    )
    metrics.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="process workers when the input is a manifest (default 1)",
    )
    metrics.add_argument(
        "--exemplars", action="store_true", default=False,
        help="append OpenMetrics exemplars (trace ids) to histogram "
        "bucket lines when the input recorded them",
    )
    serve = sub.add_parser(
        "serve", parents=[common],
        help="serve queries over HTTP with admission control and live "
        "metrics (see docs/SERVING.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port to bind; 0 picks an ephemeral port, printed on "
        "the 'serve: listening' stderr line (default 8080)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="process workers for CPU-bound query execution (default 2)",
    )
    serve.add_argument(
        "--plan-store", metavar="PATH", default=None,
        help="cross-process shared plan store; concurrent compiles of one "
        "content hash are coalesced in front of it",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4, metavar="N",
        help="tasks dispatched to the pool at once (default 4)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="requests allowed to wait for a slot before new arrivals "
        "are shed with 429 (default 16)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline cap: each request's budget is "
        "min(its own 'timeout' field, this), charged from admission "
        "(0 = uncapped; default 30)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="seconds SIGTERM/SIGINT waits for in-flight work before "
        "exiting anyway (default 10)",
    )
    serve.add_argument(
        "--max-body", type=int, default=1 << 20, metavar="BYTES",
        help="largest accepted request body (default 1 MiB)",
    )
    serve.add_argument(
        "--epsilon", type=float, default=0.05,
        help="default accuracy target for approx/fallback tasks (default 0.05)",
    )
    serve.add_argument(
        "--delta", type=float, default=0.05,
        help="default failure probability for approx/fallback tasks "
        "(default 0.05)",
    )
    serve.add_argument(
        "--no-access-log", action="store_true", default=False,
        help="suppress the per-request JSON access-log lines on stderr",
    )
    serve.add_argument(
        "--slow-query-s", type=float, default=None, metavar="SECONDS",
        help="emit a repro.slowquery/v1 JSONL record (full span tree, "
        "budget charges, cache provenance) for every request at least "
        "this slow (default: disabled)",
    )
    serve.add_argument(
        "--slow-query-log", metavar="PATH", default=None,
        help="append slow-query records here instead of stderr",
    )
    serve.add_argument(
        "--no-exemplars", action="store_true", default=False,
        help="render /metrics without OpenMetrics exemplars (plain "
        "Prometheus text format)",
    )
    sub.add_parser(
        "experiments", parents=[common],
        help="list the reproduction experiments",
    )
    top = sub.add_parser(
        "top", parents=[common],
        help="live one-screen view of a serving process, polled from "
        "its /metrics endpoint",
    )
    top.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8080/metrics",
        help="the /metrics URL to poll "
        "(default http://127.0.0.1:8080/metrics)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between scrapes (default 2)",
    )
    top.add_argument(
        "--once", action="store_true", default=False,
        help="render a single frame from a single scrape and exit",
    )
    trace = sub.add_parser(
        "trace", parents=[common],
        help="run a subcommand with observability on (= --stats), or "
        "convert a trace file with --perfetto",
    )
    trace.add_argument(
        "--perfetto", metavar="OUT", default=None,
        help="instead of running a subcommand, convert a JSONL trace "
        "file (batch --trace-out or a slow-query log, given as the "
        "positional argument) into Chrome trace-event JSON loadable at "
        "ui.perfetto.dev, written to OUT",
    )
    trace.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="subcommand and its arguments, e.g. 'trace demo' (with "
        "--perfetto: the input JSONL file)",
    )
    return parser


def _dispatch(args: argparse.Namespace) -> None:
    if args.command == "volume":
        # volume manages the budget itself: the fallback ladder needs to
        # catch exhaustion between rungs, not have it unwind past it.
        _volume(args)
        return
    if args.command == "batch":
        # batch builds one fresh budget per task from the timeout/max-cells
        # caps, so a single runaway query cannot starve the whole batch.
        _batch(args)
        return
    if args.command == "metrics":
        # metrics manages budgets per task like batch (when its input is a
        # manifest); a trace-file replay runs no queries at all.
        _metrics(args)
        return
    if args.command == "serve":
        # serve derives a fresh budget per request from --request-timeout
        # and the request's own deadline; no process-wide budget applies.
        _serve_cmd(args)
        return
    if args.command == "top":
        # top runs no queries; it only scrapes a remote /metrics.
        sys.exit(_top_cmd(args))
    with guard.govern(args.budget):
        if args.command in (None, "demo"):
            _demo(args)
        elif args.command == "approx":
            _approx(args)
        elif args.command == "experiments":
            _experiments()


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "trace" and getattr(args, "perfetto", None):
        # `trace --perfetto OUT INPUT` is offline conversion, not a
        # traced subcommand run.
        return _trace_perfetto(args)
    if args.command == "trace":
        # `trace <sub> ...` == `--stats <sub> ...`; global flags given
        # alongside `trace` are preserved.
        rest = list(args.rest)
        if not rest:
            print("usage: repro trace <subcommand> [args...]", file=sys.stderr)
            return 2
        outer = args
        args = parser.parse_args(rest)
        if args.command == "trace":
            print("usage: repro trace <subcommand> [args...]", file=sys.stderr)
            return 2
        args.stats = True
        for name in ("json", "seed", "timeout", "max_cells", "fallback"):
            if not hasattr(args, name) and hasattr(outer, name):
                setattr(args, name, getattr(outer, name))

    args.stats = getattr(args, "stats", False)
    args.json = getattr(args, "json", None)
    args.seed = getattr(args, "seed", 0)
    args.timeout = getattr(args, "timeout", None)
    args.max_cells = getattr(args, "max_cells", None)
    args.fallback = getattr(args, "fallback", "off")
    args.budget = (
        guard.Budget(deadline_s=args.timeout, max_cells=args.max_cells)
        if args.timeout is not None or args.max_cells is not None
        else None
    )

    try:
        return _run(args, argv)
    except BudgetExceeded as error:
        print(f"repro: budget exceeded: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace, argv: list[str] | None) -> int:
    if not (args.stats or args.json):
        _dispatch(args)
        return 0

    from repro import obs

    command = args.command or "demo"
    with obs.observe(f"repro.{command}") as trace_record:
        with obs.span(f"cli.{command}", seed=args.seed):
            _dispatch(args)
    if args.stats:
        print()
        print(obs.format_span_tree(trace_record))
        print(obs.format_counters(obs.REGISTRY))
    if args.json:
        row = {"argv": " ".join(argv or sys.argv[1:]), "seed": args.seed}
        if getattr(args, "batch_store_delta", None) is not None:
            row["plan_store"] = args.batch_store_delta
        record = obs.make_record(
            f"repro.{command}",
            row=row,
            registry=obs.REGISTRY,
            trace=trace_record,
        )
        try:
            obs.JsonlSink(args.json).write(record)
        except OSError as error:
            print(f"repro: cannot write {args.json}: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
