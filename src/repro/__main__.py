"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``demo``        run a compact end-to-end demonstration (default)
``volume``      exact VOL_I of a formula given on the command line
``experiments`` list the paper-reproduction experiments and how to run them
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction


def _demo() -> None:
    from repro.core import sum_of_endpoints, volume_of_query
    from repro.db import FRInstance, FiniteInstance, Schema, output_formula
    from repro.logic import Relation, exists_adom, variables

    x, y = variables("x y")
    S = Relation("S", 2)
    db = FRInstance.make(
        Schema.make({"S": 2}), {"S": ((x, y), (0 <= y) & (y <= x) & (x <= 1))}
    )
    print("repro: Benedikt & Libkin, PODS 1999 — FO + POLY + SUM")
    print()
    print("database   S(x, y) :=", db.definition("S")[1])
    query = S(x, y) & (y <= Fraction(1, 4))
    print("query      S(x, y) AND y <= 1/4")
    print("closure    ->", output_formula(query, db))
    print("volume     ->", volume_of_query(query, db, ("x", "y")), "(exact, Theorem 3)")
    points = FiniteInstance.make(Schema.make({"P": 1}), {"P": [1, 2, 3]})
    P = Relation("P", 1)
    body = exists_adom(y, P(y) & (0 < x) & (x < y))
    print("END sum    ->", sum_of_endpoints(points, x, body),
          "(sum of interval endpoints, Section 5 example)")
    print()
    print("more: examples/*.py, DESIGN.md, EXPERIMENTS.md")


def _volume(args: argparse.Namespace) -> None:
    from repro.geometry import formula_volume_unit_cube
    from repro.logic import parse

    formula = parse(args.formula)
    names = sorted(formula.free_variables())
    volume = formula_volume_unit_cube(formula, names)
    print(f"VOL_I({args.formula}) over {', '.join(names)} = {volume} = {float(volume)}")


def _experiments() -> None:
    rows = [
        ("E1", "Section 3 blow-up example", "bench_e1_km_blowup.py"),
        ("E2", "VC sample bound", "bench_e2_sample_bounds.py"),
        ("E3", "separating sentences / AVG reduction", "bench_e3_separating.py"),
        ("E4", "trivial 1/2-approximation (Prop 4)", "bench_e4_trivial.py"),
        ("E5", "good instances + AC0 failure (Thm 2)", "bench_e5_good_instances.py"),
        ("E6", "VCdim >= log |D| (Prop 5)", "bench_e6_vcdim_growth.py"),
        ("E7", "Loewner-John convex band", "bench_e7_lowner_john.py"),
        ("E8", "polygon area SUM term (Sec 5)", "bench_e8_polygon_area.py"),
        ("E9", "exact semi-linear volumes (Thm 3)", "bench_e9_semilinear_volume.py"),
        ("E10", "uniform witness sampling (Thm 4)", "bench_e10_witness_volume.py"),
        ("A1", "ablation: FM pruning", "bench_a1_fm_prune.py"),
    ]
    print("experiments (run: pytest benchmarks/ --benchmark-only -s):")
    for key, title, module in rows:
        print(f"  {key:<4} {title:<42} benchmarks/{module}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exact and Approximate Aggregation in "
        "Constraint Query Languages' (PODS 1999)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="compact end-to-end demonstration")
    volume = sub.add_parser("volume", help="exact VOL_I of a linear formula")
    volume.add_argument("formula", help='e.g. "0 <= y AND y <= x AND x <= 1"')
    sub.add_parser("experiments", help="list the reproduction experiments")
    args = parser.parse_args(argv)

    if args.command in (None, "demo"):
        _demo()
    elif args.command == "volume":
        _volume(args)
    elif args.command == "experiments":
        _experiments()
    return 0


if __name__ == "__main__":
    sys.exit(main())
