"""E4 — Proposition 4: the trivial 1/2-approximation is definable and is
the best possible.

Paper claim: FO + LIN defines VOL_I^eps for eps >= 1/2 — "if the volume is
not 0 or 1, then 1/2 is the eps-approximation" — and (Theorem 2) nothing
better is definable.

Reproduction: over a family of random semi-linear subsets of I^2, the
trivial operator's error is always <= 1/2, attains values arbitrarily
close to 1/2 (so no smaller eps would do for *this* operator), and is
exact on the 0/1 boundary cases.
"""

from fractions import Fraction

import pytest

from repro.approx import trivial_vol_approximation
from repro.geometry import formula_volume_unit_cube
from repro.logic import between, variables

from conftest import print_table
from obs_report import emit

x, y = variables("x y")


def random_semilinear(rng):
    """A random union of up to 3 axis-aligned boxes inside I^2."""
    from repro.logic import disjunction

    parts = []
    for _ in range(int(rng.integers(1, 4))):
        x0, x1 = sorted(Fraction(int(v), 16) for v in rng.integers(0, 17, 2))
        y0, y1 = sorted(Fraction(int(v), 16) for v in rng.integers(0, 17, 2))
        if x0 < x1 and y0 < y1:
            parts.append(between(x0, x, x1) & between(y0, y, y1))
    if not parts:
        return between(0, x, Fraction(1, 2)) & between(0, y, 1)
    return disjunction(*parts)


def test_e4_trivial_approximation(rng, benchmark):
    formulas = [random_semilinear(rng) for _ in range(12)]
    formulas.append((x > 2) & (y > 2))          # volume 0
    formulas.append((x > -1) & (y > -1))        # volume 1

    def run():
        out = []
        for formula in formulas:
            estimate = trivial_vol_approximation(formula, ("x", "y"))
            truth = formula_volume_unit_cube(formula, ("x", "y"))
            out.append((estimate, truth))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [i, str(truth), str(estimate), f"{float(abs(estimate - truth)):.4f}"]
        for i, (estimate, truth) in enumerate(results)
    ]
    header = ["case", "true VOL_I", "estimate", "|error|"]
    print_table(
        "E4: trivial 1/2-approximation (error always <= 1/2; exact at 0/1)",
        header,
        rows,
    )
    emit("E4", header, rows)

    for estimate, truth in results:
        assert abs(estimate - truth) <= Fraction(1, 2)
    # Boundary cases answered exactly:
    assert results[-2] == (0, 0)
    assert results[-1] == (1, 1)
    # The middle cases all answer 1/2 (that is the operator's whole point).
    assert any(estimate == Fraction(1, 2) for estimate, _ in results[:-2])
