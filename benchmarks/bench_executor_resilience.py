"""ENGINE — fault-tolerance overhead of the batch executor.

Not a paper claim — an engineering contract of the ``repro.engine``
fault-tolerance layer (see docs/ROBUSTNESS.md): (1) journaling every
completed task (one fsynced JSONL line each) must not dominate a batch —
the journaled run stays within 2x + 1s of the plain run and produces
byte-identical results; (2) recovering from a SIGKILLed worker (pool
rebuild + re-dispatch of the in-flight task) must cost bounded wall-clock
on top of the fault-free run, again byte-identically.  The table reports
the measured times; each row lands in the ``repro.obs/v2`` trajectory.
"""

import time

from repro.engine import DEFAULT_CACHE, run_batch

from conftest import print_table
from obs_report import emit


def band_query(k: int, branches: int = 3) -> str:
    """A 2-quantifier disjunctive query; *k* makes each shape distinct."""
    alts = " OR ".join(
        f"({j}*u <= {k}*x AND u + v <= x + {j}*y AND {j}*v <= u + 1)"
        for j in range(1, branches + 1)
    )
    return (
        "EXISTS u . EXISTS v . (0 <= u AND u <= 1 AND 0 <= v AND v <= 1 AND "
        f"({alts}) AND 0 <= x AND x <= 1 AND 0 <= y AND y <= 1)"
    )


def stripped(results):
    return [{k: v for k, v in r.items() if k != "elapsed_s"} for r in results]


def test_journal_overhead_is_bounded(tmp_path):
    tasks = [{"id": f"band{k}", "formula": band_query(k)} for k in range(2, 8)]

    DEFAULT_CACHE.clear()
    start = time.perf_counter()
    plain = run_batch(tasks, workers=1, seed=0)
    plain_s = time.perf_counter() - start

    journal = str(tmp_path / "journal.jsonl")
    DEFAULT_CACHE.clear()
    start = time.perf_counter()
    journaled = run_batch(tasks, workers=1, seed=0, journal=journal)
    journaled_s = time.perf_counter() - start

    assert stripped(journaled) == stripped(plain)
    lines = [line for line in open(journal, encoding="utf-8") if line.strip()]
    assert len(lines) == len(tasks) + 1  # header + one record per task

    bound_s = plain_s * 2 + 1.0
    header = ["probe", "seconds", "target"]
    rows = [
        [f"plain batch ({len(tasks)} tasks)", f"{plain_s:.4f}", "-"],
        ["journaled batch (fsync/task)", f"{journaled_s:.4f}",
         f"<= {bound_s:.4f}"],
        ["overhead", f"{journaled_s - plain_s:+.4f}", "bounded"],
    ]
    print_table("ENGINE: journal overhead", header, rows)
    emit(
        "executor_journal",
        header,
        rows,
        extra={
            "tasks": len(tasks),
            "plain_s": round(plain_s, 6),
            "journaled_s": round(journaled_s, 6),
        },
    )
    assert journaled_s <= bound_s


def test_crash_recovery_is_bounded_and_identical():
    tasks = [{"id": f"band{k}", "formula": band_query(k)} for k in range(2, 8)]

    DEFAULT_CACHE.clear()
    start = time.perf_counter()
    fault_free = run_batch(tasks, workers=2, seed=0)
    fault_free_s = time.perf_counter() - start

    # Task 1's first dispatch SIGKILLs its worker: the pool breaks, is
    # rebuilt, and the task is retried.  The recovery machinery (marker
    # scan, pool rebuild, re-dispatch) is what this run prices.
    DEFAULT_CACHE.clear()
    start = time.perf_counter()
    recovered = run_batch(
        tasks, workers=2, seed=0, chaos="kill:1", retry_backoff_s=0.0,
    )
    recovered_s = time.perf_counter() - start

    assert stripped(recovered) == stripped(fault_free)

    bound_s = fault_free_s * 4 + 5.0
    header = ["probe", "seconds", "target"]
    rows = [
        [f"fault-free batch ({len(tasks)} tasks)", f"{fault_free_s:.4f}", "-"],
        ["1 worker SIGKILL + recovery", f"{recovered_s:.4f}",
         f"<= {bound_s:.4f}"],
        ["recovery overhead", f"{recovered_s - fault_free_s:+.4f}", "bounded"],
    ]
    print_table("ENGINE: crash recovery", header, rows)
    emit(
        "executor_recovery",
        header,
        rows,
        extra={
            "tasks": len(tasks),
            "fault_free_s": round(fault_free_s, 6),
            "recovered_s": round(recovered_s, 6),
        },
    )
    assert recovered_s <= bound_s
