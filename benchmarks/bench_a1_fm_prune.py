"""A1 — ablation: Fourier-Motzkin infeasible-disjunct pruning on/off.

Not a paper claim — an implementation design choice called out in
DESIGN.md.  Eliminating a quantifier from a DNF multiplies disjuncts;
pruning infeasible disjuncts between eliminations costs feasibility checks
but bounds the growth.  The ablation measures output size (number of
disjuncts of the eliminated formula) and wall time for both settings on a
family of nested-quantifier queries, verifying the outputs are equivalent.
"""

import itertools
from fractions import Fraction

import pytest

from repro.logic import between, evaluate, exists, variables
from repro.qe import qe_linear
from repro.logic.normalform import qf_to_dnf

from conftest import print_table
from obs_report import emit

x, y, z, w = variables("x y z w")


def nested_query(depth: int):
    """exists chain with unions at each level (a DNF-growth stress)."""
    body = (between(0, x, 1) & between(0, y, 1)) | (
        between(Fraction(1, 2), x, 2) & (y <= x)
    )
    formula = body
    bound_vars = [y, z, w][: depth]
    for var in bound_vars:
        formula = exists(var, formula & (var >= 0) & (var <= x + 1))
    return formula


def disjunct_count(formula) -> int:
    return max(1, len(qf_to_dnf(formula)))


GRID = [Fraction(n, 2) for n in range(-1, 5)]


def test_a1_prune_ablation(benchmark):
    queries = [nested_query(d) for d in (1, 2)]

    def run(prune: bool):
        return [qe_linear(q, prune=prune) for q in queries]

    pruned = benchmark(run, True)
    unpruned = run(False)

    rows = []
    for i, (query, with_prune, without_prune) in enumerate(
        zip(queries, pruned, unpruned)
    ):
        # Semantic agreement on a grid (both must equal each other).
        for point in itertools.product(GRID, repeat=1):
            env = {"x": point[0]}
            assert evaluate(with_prune, env) == evaluate(without_prune, env)
        rows.append(
            [i + 1, disjunct_count(with_prune), disjunct_count(without_prune)]
        )
    header = ["nesting depth", "disjuncts (prune on)", "disjuncts (prune off)"]
    print_table(
        "A1: FM pruning ablation (disjuncts of the eliminated formula)",
        header,
        rows,
    )
    emit("A1", header, rows)
    for _, with_prune, without_prune in rows:
        assert with_prune <= without_prune
