"""E3 — Proposition 1 / Theorem 1: no separating sentences; AVG reduction.

Paper claims:
(1) Proposition 1 — no (c1, c2)-separating sentence over (U1, U2, <) is
    FO-definable.  Reproduction: for each quantifier rank r, the EF-game
    certificate — a pair of instances on opposite sides of the band that
    the duplicator equalises at rank r — succeeds, refuting *every* rank-r
    sentence at once.
(2) Theorem 1's reduction — the translation of (U1, U2) into (0, Delta)
    and (1 - Delta, 1) makes AVG a monotone function of the cardinality
    ratio, so an eps-approximation of AVG (eps < 1/2) would decide the
    ratio and contradict (1).  Reproduction: the decision derived from the
    exact average, perturbed by any noise up to eps, classifies U1-heavy
    vs U2-heavy instances correctly.
"""

from fractions import Fraction

import pytest

from repro.inexpressibility import (
    avg_reduction,
    ef_refutation_pair,
    refute_rank,
    separation_constants,
)

from conftest import print_table
from obs_report import emit


def test_e3_ef_refutation(benchmark):
    c1 = c2 = 2.0
    ranks = (1, 2, 3)

    def run():
        return {rank: refute_rank(c1, c2, rank) for rank in ranks}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for rank in ranks:
        a, b = ef_refutation_pair(c1, c2, rank)
        rows.append(
            [rank, f"U1={a.cardinalities()['U1']},U2={a.cardinalities()['U2']}",
             f"U1={b.cardinalities()['U1']},U2={b.cardinalities()['U2']}",
             "duplicator" if outcomes[rank] else "spoiler"]
        )
    header = ["rank r", "instance A (U1-heavy)", "instance B (U2-heavy)", "winner"]
    print_table(
        "E3a: EF certificates against (2,2)-separating sentences",
        header,
        rows,
    )
    emit("E3a", header, rows)
    assert all(outcomes.values()), "duplicator must win at every rank"


def test_e3_avg_reduction(benchmark):
    epsilon = Fraction(1, 10)
    c, _ = separation_constants(epsilon)
    cases = [(int(4 * c) + 1, 1), (40, 1), (1, int(4 * c) + 1), (1, 40)]

    def run():
        out = []
        for n1, n2 in cases:
            reduction = avg_reduction(list(range(n1)), list(range(n2)), epsilon)
            expected = "U1-heavy" if n1 > n2 else "U2-heavy"
            worst_ok = all(
                reduction.decide_ratio(reduction.average + noise, c) == expected
                for noise in (
                    -epsilon + Fraction(1, 1000), Fraction(0), epsilon - Fraction(1, 1000)
                )
            )
            out.append((n1, n2, reduction.average, expected, worst_ok))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n1, n2, f"{float(avg):.4f}", expected, "yes" if ok else "NO"]
        for n1, n2, avg, expected, ok in results
    ]
    header = ["card U1", "card U2", "exact AVG", "class", "robust to eps noise"]
    print_table(
        f"E3b: Theorem 1 reduction (eps=1/10, derived c={c})",
        header,
        rows,
    )
    emit("E3b", header, rows)
    assert all(ok for *_, ok in results)
