"""E2 — Section 3: the VC sample bound M(eps, delta, d) and uniform
volume estimation from one sample.

Paper claim (Blumer et al., as used in Lemma 1's machinery): a random
sample of size M > max((4/eps) log(2/delta), (8d/eps) log(13/eps)) gives,
with probability >= 1 - delta, simultaneously for all parameters a,
|fraction of sample in phi(a) - VOL_I(phi(a))| < eps.

Reproduction: for the definable family of lower-left boxes
phi(a1, a2; y1, y2) = (0 <= y1 <= a1) & (0 <= y2 <= a2) (VC dimension 2),
draw M(eps, delta, 2) points and measure the empirical sup-error over a
parameter grid.  Criterion: sup-error < eps on the seeded run, and the
bound M scales as the formula dictates.  Ablation A3: the VC bound vs the
per-query Hoeffding bound (which does NOT promise uniformity).
"""

import numpy as np
import pytest

from repro.geometry import hoeffding_sample_size
from repro.vc import blumer_sample_size

from conftest import print_table
from obs_report import emit


def sup_error(sample: np.ndarray, grid: np.ndarray) -> float:
    worst = 0.0
    for a1 in grid:
        for a2 in grid:
            hits = np.count_nonzero((sample[:, 0] <= a1) & (sample[:, 1] <= a2))
            estimate = hits / sample.shape[0]
            worst = max(worst, abs(estimate - a1 * a2))
    return worst


def test_e2_sample_bounds(rng, benchmark):
    delta = 0.1
    vc_dim = 2  # lower-left boxes in the plane
    grid = np.linspace(0.0, 1.0, 11)
    rows = []
    results = {}

    def run():
        out = {}
        for epsilon in (0.2, 0.1, 0.05):
            m = blumer_sample_size(epsilon, delta, vc_dim)
            sample = rng.random((m, 2))
            out[epsilon] = (m, sup_error(sample, grid))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for epsilon, (m, worst) in results.items():
        rows.append(
            [epsilon, m, hoeffding_sample_size(epsilon, delta), f"{worst:.4f}",
             "yes" if worst < epsilon else "NO"]
        )
    header = ["eps", "M (VC bound)", "Hoeffding m (single query)", "sup-error", "< eps"]
    print_table(
        "E2: one VC-sized sample approximates all parameters at once",
        header,
        rows,
    )
    emit("E2", header, rows)

    for epsilon, (m, worst) in results.items():
        assert worst < epsilon, f"sup-error {worst} >= eps {epsilon}"
        # The uniform bound costs more than the single-query bound (A3).
        assert m > hoeffding_sample_size(epsilon, delta)
    # The bound formula scales like d/eps * log(1/eps).
    assert blumer_sample_size(0.05, delta, vc_dim) > 2 * blumer_sample_size(
        0.2, delta, vc_dim
    )
