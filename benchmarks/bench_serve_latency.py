"""SERVE — warm-plan request latency through the async query service.

Not a paper claim — an engineering contract of the ``repro.serve``
front-end (see docs/SERVING.md): once a query shape's plan is in the
shared plan store, serving it again must cost sockets-and-sampling, not
recompilation.  Concretely, the warm p95 request latency through a live
``python -m repro serve`` subprocess must be at least 3x better than
the cold p95 (first-contact requests that pay quantifier elimination and
cell decomposition inside a worker).  The table reports cold vs warm
p50/p95 over real HTTP round-trips; the run also writes
``benchmarks/out/BENCH_serve.json`` (``$REPRO_BENCH_SERVE_OUT``
overrides the path) with the percentiles plus the server's own /metrics
counters.
"""

import http.client
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import repro

from conftest import print_table
from obs_report import emit

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Distinct-but-equal-cost query shapes: the disjunction count fixes the
#: Fourier-Motzkin compile cost, ``k`` salts the content hash.
COLD_SHAPES = 6
REPEATS_PER_SHAPE = 4


def band_query(k: int, branches: int = 4) -> str:
    alts = " OR ".join(
        f"({j}*u <= {k}*x AND u + v <= x + {j}*y AND {j}*v <= u + 1)"
        for j in range(1, branches + 1)
    )
    return (
        "EXISTS u . EXISTS v . (0 <= u AND u <= 1 AND 0 <= v AND v <= 1 AND "
        f"({alts}) AND 0 <= x AND x <= 1 AND 0 <= y AND y <= 1)"
    )


class _Server:
    """A ``repro serve`` subprocess pinned to an ephemeral port."""

    def __init__(self, *args: str, startup_timeout: float = 30.0):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--no-access-log", *args],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        self.port = None
        self._lines: list[str] = []
        self._ready = threading.Event()
        threading.Thread(target=self._drain, daemon=True).start()
        if not self._ready.wait(startup_timeout):
            self.proc.kill()
            raise RuntimeError(
                "server never came up; stderr: " + "".join(self._lines)
            )

    def _drain(self) -> None:
        for line in self.proc.stderr:
            self._lines.append(line)
            if line.startswith("serve: listening on "):
                self.port = int(line.split()[3].rsplit(":", 1)[1])
                self._ready.set()
        self._ready.set()

    def request(self, method: str, path: str, payload: dict | None = None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=120)
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def close(self) -> None:
        # SIGTERM first: a graceful drain shuts the worker pool down too,
        # where SIGKILL would orphan the pool's child processes.
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _timed_query(server: _Server, formula: str) -> float:
    start = time.perf_counter()
    status, body = server.request(
        "POST", "/v1/query", {"op": "volume", "formula": formula}
    )
    elapsed = time.perf_counter() - start
    envelope = json.loads(body)
    assert status == 200, body
    assert envelope["result"]["status"] == "ok", body
    return elapsed


def _serve_counters(server: _Server) -> dict[str, float]:
    _, body = server.request("GET", "/metrics")
    counters: dict[str, float] = {}
    for line in body.decode().splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        if name.startswith("repro_serve_") or name.startswith("repro_engine_store_"):
            if "{" not in name:
                counters[name] = float(value)
    return counters


def test_warm_requests_beat_cold(tmp_path):
    store = tmp_path / "plans.sqlite"
    server = _Server("--workers", "2", "--plan-store", str(store),
                     "--request-timeout", "0")
    try:
        # Cold: first contact with each distinct shape pays compilation
        # inside a worker (the store is empty, nothing to coalesce with).
        cold = [_timed_query(server, band_query(k)) for k in range(2, 2 + COLD_SHAPES)]

        # Warm: the same shapes again — every plan now comes from the
        # worker's memory cache or the shared store, never the compiler.
        warm = [
            _timed_query(server, band_query(k))
            for _ in range(REPEATS_PER_SHAPE)
            for k in range(2, 2 + COLD_SHAPES)
        ]
        counters = _serve_counters(server)
    finally:
        server.close()

    cold_p50, cold_p95 = _percentile(cold, 0.5), _percentile(cold, 0.95)
    warm_p50, warm_p95 = _percentile(warm, 0.5), _percentile(warm, 0.95)

    header = ["phase", "requests", "p50_s", "p95_s"]
    rows = [
        ["cold", len(cold), round(cold_p50, 4), round(cold_p95, 4)],
        ["warm", len(warm), round(warm_p50, 4), round(warm_p95, 4)],
    ]
    print_table("SERVE: cold vs warm request latency", header, rows)
    emit("BENCH_serve_latency", header, rows)
    _write_report(cold, warm, cold_p50, cold_p95, warm_p50, warm_p95, counters)

    assert warm_p95 < cold_p95 / 3, (
        f"warm p95 {warm_p95:.4f}s not 3x better than cold p95 {cold_p95:.4f}s"
    )


def _report_path() -> Path:
    env = os.environ.get("REPRO_BENCH_SERVE_OUT")
    if env:
        return Path(env)
    out_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "BENCH_serve.json"


def _write_report(cold, warm, cold_p50, cold_p95, warm_p50, warm_p95, counters):
    report = {
        "schema": "repro.obs/v2",
        "experiment": "BENCH_serve",
        "shapes": COLD_SHAPES,
        "cold_requests": len(cold),
        "warm_requests": len(warm),
        "cold_p50_s": round(cold_p50, 6),
        "cold_p95_s": round(cold_p95, 6),
        "warm_p50_s": round(warm_p50, 6),
        "warm_p95_s": round(warm_p95, 6),
        "speedup_p95": round(cold_p95 / warm_p95, 3),
        "serve_counters": counters,
    }
    path = _report_path()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nserve latency report -> {path}")
