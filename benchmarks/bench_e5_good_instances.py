"""E5 — Theorem 2's engine: good instances, the volume reduction, and the
failure of fixed circuits on shrinking gaps.

Paper claims (Lemmas 2-3):
(1) Mapping a good instance (A = {0..n-1}, B) into [0, 1] with equal
    spacing, VOL(X) tracks card(B)/n, so an eps-approximate volume yields
    a (c1, c2)-good sentence with c1 = (1-2 eps)/3, c2 = (2+2 eps)/3.
(2) A (c1, c2)-good FO_act sentence would compile to constant-depth
    polynomial-size circuits separating cardinalities < c1 n from > c2 n,
    and in particular some cardinalities in [sqrt(n), n - sqrt(n)] — which
    AC^0 circuits cannot do.

Reproduction: (1) the decision rule derived from the exact volume (a
perfect eps-approximator) satisfies the good-sentence contract on every
block size, for several n; (2) every candidate in a pool of fixed
FO_act sentences, compiled to circuits, fails the separation for large
enough n while its depth stays constant and its size stays polynomial.
"""

import math
from fractions import Fraction

import pytest

from repro.inexpressibility import (
    GoodInstance,
    compile_sentence,
    good_constants,
    interval_sets,
    separates_cardinalities,
    volume_decision,
)
from repro.logic import Relation, exists_adom, forall_adom, variables

from conftest import print_table
from obs_report import emit

x, y = variables("x y")
B = Relation("B", 1)

#: Fixed FO_act candidates (each a would-be good sentence).
CANDIDATES = {
    "exists B":            exists_adom(x, B(x)),
    "B has >= 2 elements": exists_adom(x, exists_adom(y, B(x) & B(y) & (x < y))),
    "B hits second half":  exists_adom(x, B(x) & exists_adom(y, (~B(y)) & (y < x))),
    "all late are B":      forall_adom(x, B(x) | (x < 1)),
}


def test_e5_volume_reduction(benchmark):
    epsilon = Fraction(1, 10)
    c1, c2 = good_constants(epsilon)

    def run():
        rows = []
        violations = 0
        for n in (9, 30, 60):
            correct = 0
            total = 0
            for size in range(1, n):
                instance = GoodInstance.make(n, list(range(size)))
                decision = volume_decision(instance, epsilon)
                if size < c1 * n and decision:
                    violations += 1
                elif size > c2 * n and not decision:
                    violations += 1
                else:
                    correct += 1
                total += 1
            x_set, _ = interval_sets(GoodInstance.make(n, list(range(n // 2))))
            rows.append([n, str(c1), str(c2), f"{float(x_set.measure()):.3f}",
                         f"{correct}/{total}"])
        return rows, violations

    rows, violations = benchmark.pedantic(run, rounds=1, iterations=1)
    header = ["n", "c1", "c2", "VOL(X) at |B|=n/2", "contract rows OK"]
    print_table(
        "E5a: the volume-based (c1,c2)-good sentence contract",
        header,
        rows,
    )
    emit("E5a", header, rows)
    assert violations == 0


def test_e5_circuits_fail(benchmark):
    epsilon = Fraction(1, 10)
    c1, c2 = (float(v) for v in good_constants(epsilon))

    def run():
        rows = []
        all_fail_at_largest = True
        for name, sentence in CANDIDATES.items():
            failure_n = None
            size_at, depth_at = {}, {}
            for n in (8, 16, 32, 64):
                circuit = compile_sentence(sentence, n)
                size_at[n], depth_at[n] = circuit.size(), circuit.depth()
                if not separates_cardinalities(circuit, c1, c2):
                    failure_n = failure_n or n
            rows.append([name, failure_n, depth_at[8], depth_at[64],
                         size_at[8], size_at[64]])
            if failure_n is None:
                all_fail_at_largest = False
        return rows, all_fail_at_largest

    rows, all_fail = benchmark.pedantic(run, rounds=1, iterations=1)
    header = ["candidate", "fails at n", "depth n=8", "depth n=64",
              "size n=8", "size n=64"]
    print_table(
        "E5b: fixed FO_act sentences compiled to circuits fail to separate "
        f"(c1={c1:.3f}, c2={c2:.3f})",
        header,
        rows,
    )
    emit("E5b", header, rows)
    assert all_fail, "every fixed candidate must fail at some tested n"
    # Constant depth, polynomial size — the AC^0 shape of Lemma 3.
    for row in rows:
        assert row[2] == row[3], "depth must not grow with n"
        assert row[5] <= 64**3, "size must stay polynomial"
