"""ENGINE — plan-cache amortization and parallel batch fan-out.

Not a paper claim — an engineering contract of the ``repro.engine``
subsystem (see docs/ENGINE.md): preparing a query pays quantifier
elimination and cell decomposition once, so (1) repeated evaluation
through a warm plan cache must be at least 5x faster than re-running the
cold pipeline each time, (2) reloading a spilled plan must beat
recompiling it, (3) a 4-worker batch over independent queries must
beat the same batch run serially, and (4) a batch run against a
prewarmed shared plan store must be at least 3x faster than the cold
run that populated it.  The table reports the measured times; each row
lands in the ``repro.obs/v2`` trajectory with the engine.* counters
attached, the batch test additionally writes
``benchmarks/out/BENCH_engine_batch.json`` (``$REPRO_BENCH_BATCH_OUT``
overrides the path) with the timings plus the merged cross-process
telemetry of an observed run, and the store test writes
``benchmarks/out/BENCH_engine_store.json`` (``$REPRO_BENCH_STORE_OUT``)
with the cold/warm timings plus the store's own traffic counters.
"""

import json
import os
import time
from pathlib import Path

from repro.engine import (
    DEFAULT_CACHE,
    PlanCache,
    PlanStore,
    executor,
    prepare,
    run_batch,
)

from conftest import print_table
from obs_report import emit


def band_query(k: int, branches: int = 3) -> str:
    """A 2-quantifier disjunctive query; *k* makes each shape distinct."""
    alts = " OR ".join(
        f"({j}*u <= {k}*x AND u + v <= x + {j}*y AND {j}*v <= u + 1)"
        for j in range(1, branches + 1)
    )
    return (
        "EXISTS u . EXISTS v . (0 <= u AND u <= 1 AND 0 <= v AND v <= 1 AND "
        f"({alts}) AND 0 <= x AND x <= 1 AND 0 <= y AND y <= 1)"
    )


def test_warm_cache_speedup(tmp_path):
    query = band_query(2)
    repeats = 5

    start = time.perf_counter()
    for _ in range(repeats):
        cold_value = prepare(query, cache=None).volume()
    cold_s = time.perf_counter() - start

    cache = PlanCache()
    prepare(query, cache=cache).volume()  # compile + first evaluation
    start = time.perf_counter()
    for _ in range(repeats):
        warm_value = prepare(query, cache=cache).volume()
    warm_s = time.perf_counter() - start
    assert warm_value == cold_value

    # Spill the warm cache and reload it in a fresh one: the loaded plan
    # skips QE/decomposition, so load + evaluate beats a cold run.
    spill = str(tmp_path / "plans.jsonl")
    cache.spill(spill)
    start = time.perf_counter()
    fresh = PlanCache()
    fresh.load(spill)
    loaded_value = prepare(query, cache=fresh).volume()
    loaded_s = time.perf_counter() - start
    assert loaded_value == cold_value
    assert fresh.stats.hits == 1  # served from the spill, not recompiled

    speedup = cold_s / warm_s
    header = ["probe", "seconds", "target"]
    rows = [
        [f"cold prepare+volume x{repeats}", f"{cold_s:.4f}", "-"],
        [f"warm cache x{repeats}", f"{warm_s:.4f}", f"<= cold/5"],
        ["spill load + volume", f"{loaded_s:.4f}", f"< cold/{repeats}"],
        ["warm speedup", f"{speedup:.1f}x", ">= 5x"],
    ]
    print_table("ENGINE: plan-cache amortization", header, rows)
    emit(
        "engine_cache",
        header,
        rows,
        extra={"repeats": repeats, "speedup": round(speedup, 2)},
    )
    assert speedup >= 5.0
    assert loaded_s < cold_s / repeats


def test_parallel_batch_beats_serial():
    tasks = [{"id": f"band{k}", "formula": band_query(k)} for k in range(2, 10)]

    # Parallel first: worker processes fork from a cold parent, so neither
    # run inherits the other's warm plans.
    DEFAULT_CACHE.clear()
    start = time.perf_counter()
    parallel = run_batch(tasks, workers=4, seed=0)
    parallel_s = time.perf_counter() - start

    DEFAULT_CACHE.clear()
    start = time.perf_counter()
    serial = run_batch(tasks, workers=1, seed=0)
    serial_s = time.perf_counter() - start

    assert [r["id"] for r in parallel] == [r["id"] for r in serial]
    assert all(r["status"] == "ok" for r in parallel)
    for left, right in zip(parallel, serial):
        assert left["exact"] == right["exact"]

    # Fan-out can only win wall-clock when there is more than one core to
    # fan out to; on a single-core box the contract degrades to "the pool
    # does not cost much more than running serially".
    cores = len(os.sched_getaffinity(0))
    target = "< serial" if cores >= 2 else "< 1.6x serial (1 core)"
    speedup = serial_s / parallel_s
    header = ["probe", "seconds", "target"]
    rows = [
        [f"serial batch ({len(tasks)} tasks)", f"{serial_s:.4f}", "-"],
        [f"4-worker batch ({cores} cores)", f"{parallel_s:.4f}", target],
        ["parallel speedup", f"{speedup:.2f}x", "> 1x" if cores >= 2 else "-"],
    ]
    print_table("ENGINE: parallel batch executor", header, rows)
    emit(
        "engine_batch",
        header,
        rows,
        extra={
            "tasks": len(tasks), "workers": 4, "cores": cores,
            "speedup": round(speedup, 2),
        },
    )
    _write_batch_report(tasks, serial_s, parallel_s, cores)
    if cores >= 2:
        assert parallel_s < serial_s
    else:
        assert parallel_s < serial_s * 1.6


def _batch_report_path() -> Path:
    env = os.environ.get("REPRO_BENCH_BATCH_OUT")
    if env:
        return Path(env)
    out_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "BENCH_engine_batch.json"


def _write_batch_report(tasks, serial_s, parallel_s, cores) -> None:
    """One JSON report: batch timings + merged cross-process telemetry.

    Re-runs the batch with ``collect_obs=True`` (observed tasks compile
    with a private plan cache, so this run's counters are deterministic)
    and folds the worker snapshots with the same merge the CLI uses.
    """
    from repro.obs.aggregate import merged_registry, summary_record

    DEFAULT_CACHE.clear()
    results = run_batch(tasks, workers=4, seed=0, collect_obs=True)
    registry = merged_registry(results)
    report = {
        "schema": "repro.obs/v2",
        "experiment": "BENCH_engine_batch",
        "tasks": len(tasks),
        "workers": 4,
        "cores": cores,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 3),
        "statuses": {r["id"]: r["status"] for r in results},
        "counters": registry.as_dict(),
        "histograms": {
            name: hist.summary()
            for name, hist in registry.histograms()
            if hist.count
        },
        "summary": summary_record(results, extra={"workers": 4}),
    }
    path = _batch_report_path()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nbatch telemetry report -> {path}")


def fm_heavy_query(k: int, n: int = 5) -> str:
    """Two nested quantifiers with *n* lower and upper bounds each.

    Fourier–Motzkin elimination multiplies bound pairs, so the compile
    step (QE + cell decomposition) costs seconds while the formula text
    stays short — exactly the regime where a prewarmed shared store
    pays: the warm path only re-parses the text to recover the content
    hash, then fetches the finished plan.
    """
    lows = " AND ".join(f"{j}*x - {j + k}*y <= u" for j in range(1, n + 1))
    highs = " AND ".join(f"u <= {j}*y + {k}" for j in range(1, n + 1))
    lows2 = " AND ".join(f"{j}*u - {k}*x <= v" for j in range(1, n + 1))
    highs2 = " AND ".join(f"v <= {j}*x + u + {k}" for j in range(1, n + 1))
    return (
        f"EXISTS u . EXISTS v . ({lows} AND {highs} AND {lows2} AND {highs2} "
        "AND 0 <= x AND x <= 1 AND 0 <= y AND y <= 1)"
    )


def test_warm_store_speedup(tmp_path):
    tasks = [
        {"id": f"fm{k}", "formula": fm_heavy_query(k)} for k in range(2, 8)
    ]
    store_path = tmp_path / "plans.sqlite"

    # Cold prewarm: an empty store, so every worker either compiles a
    # plan or adopts one a sibling just published.  Clearing the adapter
    # map keeps the parent's in-memory tier from leaking between runs.
    DEFAULT_CACHE.clear()
    executor._ADAPTERS.clear()
    start = time.perf_counter()
    cold = run_batch(
        tasks, workers=2, seed=0, plan_store=store_path, compile_only=True
    )
    cold_s = time.perf_counter() - start
    with PlanStore(str(store_path)) as store:
        cold_stats = store.stats_snapshot()
        plans = len(store)
    assert all(r["status"] == "ok" for r in cold)
    assert plans == len(tasks)
    assert cold_stats["compiles"] == len(tasks)

    # Warm prewarm: fresh worker processes against the populated store —
    # every plan is fetched and decoded instead of recompiled.
    DEFAULT_CACHE.clear()
    executor._ADAPTERS.clear()
    start = time.perf_counter()
    warm = run_batch(
        tasks, workers=2, seed=0, plan_store=store_path, compile_only=True
    )
    warm_s = time.perf_counter() - start
    with PlanStore(str(store_path)) as store:
        warm_stats = store.stats_snapshot()

    assert all(r["status"] == "ok" for r in warm)
    assert warm_stats["compiles"] == cold_stats["compiles"]  # no recompiles
    store_hits = warm_stats["hits"] - cold_stats["hits"]
    assert store_hits == len(tasks)

    # Stored plans must also evaluate: run a slice of the manifest for
    # real against the warm store and check it comes back clean.
    DEFAULT_CACHE.clear()
    executor._ADAPTERS.clear()
    evaluated = run_batch(tasks[:2], workers=2, seed=0, plan_store=store_path)
    assert all(r["status"] == "ok" for r in evaluated)
    assert all("exact" in r for r in evaluated)

    speedup = cold_s / warm_s
    header = ["probe", "seconds", "target"]
    rows = [
        [f"cold prewarm ({len(tasks)} plans)", f"{cold_s:.4f}", "-"],
        ["warm prewarm (store hits)", f"{warm_s:.4f}", "<= cold/3"],
        ["warm speedup", f"{speedup:.1f}x", ">= 3x"],
    ]
    print_table("ENGINE: shared plan store prewarming", header, rows)
    emit(
        "engine_store",
        header,
        rows,
        extra={
            "tasks": len(tasks), "workers": 2, "plans": plans,
            "store_hits": store_hits, "speedup": round(speedup, 2),
        },
    )
    _write_store_report(tasks, cold_s, warm_s, plans, cold_stats, warm_stats)
    assert speedup >= 3.0


def _store_report_path() -> Path:
    env = os.environ.get("REPRO_BENCH_STORE_OUT")
    if env:
        return Path(env)
    out_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "BENCH_engine_store.json"


def _write_store_report(tasks, cold_s, warm_s, plans, cold_stats, warm_stats) -> None:
    report = {
        "schema": "repro.obs/v2",
        "experiment": "BENCH_engine_store",
        "tasks": len(tasks),
        "workers": 2,
        "plans": plans,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3),
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
    }
    path = _store_report_path()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nstore telemetry report -> {path}")
