"""GUARD — overhead of the cooperative budget checkpoints.

Not a paper claim — a contract of the resource governor (see
docs/ROBUSTNESS.md): an ungoverned ``guard.checkpoint()`` must cost well
under a microsecond (one context-variable read), a governed-but-untripped
checkpoint must stay in the same ballpark, and end-to-end exact volume
under a generous budget must be indistinguishable from an ungoverned run.
The table reports the measured per-call costs and the governed-vs-
ungoverned throughput on a multi-cell volume query.
"""

import time
from fractions import Fraction

from repro import guard
from repro.geometry import formula_volume_unit_cube
from repro.logic import variables

from conftest import print_table
from obs_report import emit

x, y = variables("x y")

#: A 4-cell union: exercises QE, decomposition, and union volume.
QUERY = (
    ((x < Fraction(1, 4)) & (y < Fraction(1, 2)))
    | ((x > Fraction(3, 4)) & (y < Fraction(1, 2)))
    | ((0 <= y) & (y <= x) & (x <= 1))
)


def _per_call_ns(fn, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls * 1e9


def _volume_seconds(repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        formula_volume_unit_cube(QUERY, ("x", "y"))
    return time.perf_counter() - start


def test_guard_checkpoint_overhead(benchmark):
    assert guard.active() is None

    calls = 200_000
    ungoverned_ns = _per_call_ns(guard.checkpoint, calls)
    benchmark.pedantic(guard.checkpoint, rounds=5, iterations=10_000)

    generous = guard.Budget(
        deadline_s=3600, max_cells=10**9, max_constraints=10**9,
        max_size=10**9, max_depth=10**6,
    )
    with guard.activate(generous):
        governed_ns = _per_call_ns(guard.checkpoint, calls)
        charge_ns = _per_call_ns(lambda: guard.charge("cells"), calls)
    generous.reset_consumed()

    repeats = 20
    _volume_seconds(repeats)  # warm-up
    ungoverned_s = _volume_seconds(repeats)
    with guard.activate(generous):
        governed_s = _volume_seconds(repeats)

    ratio = governed_s / ungoverned_s
    header = ["probe", "measured", "budget"]
    rows = [
        ["ungoverned checkpoint (ns/call)", f"{ungoverned_ns:.0f}", "< 1000"],
        ["governed untripped checkpoint (ns/call)", f"{governed_ns:.0f}", "< 2000"],
        ["governed cell charge (ns/call)", f"{charge_ns:.0f}", "< 2000"],
        ["volume governed/ungoverned ratio", f"{ratio:.3f}", "< 2.0 (CI-safe)"],
    ]
    print_table("GUARD: budget checkpoint overhead", header, rows)
    emit("GUARD-overhead", header, rows)

    # The documented guarantee is <1us ungoverned; assert with CI headroom.
    assert ungoverned_ns < 5_000
    assert governed_ns < 10_000
    assert charge_ns < 10_000
    # Governed end-to-end throughput: generous bound, timing is noisy.
    assert ratio < 2.0
