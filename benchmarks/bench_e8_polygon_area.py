"""E8 — Section 5 worked example: convex polygon area in FO + POLY + SUM.

Paper claim: the area of a convex polygon is expressible as the summation
term ``sum_{(psi1 | END[u, psi2])} gamma`` — fan triangulation from the
lexicographically least vertex with the deterministic triangle-area
formula — "a standard computation of area used in computational geometry
... in fact used in GISs for area computation".

Reproduction: random convex polygons with 4..12 vertices; the language
evaluation must equal the exact shoelace area on every instance, and the
evaluation cost is benchmarked as the vertex count grows.
"""

from fractions import Fraction

import pytest

from repro.core import polygon_area
from repro.geometry import shoelace_area, sort_ccw

from conftest import print_table
from obs_report import emit


def random_convex_polygon(rng, count: int):
    """Random convex polygon: points on a rational 'circle' of radius ~5."""
    import math

    angles = sorted(float(a) for a in rng.uniform(0.0, 2 * math.pi, count))
    points = []
    for angle in angles:
        r = 4 + float(rng.uniform(0, 1))
        px = Fraction(round(r * math.cos(angle) * 64), 64)
        py = Fraction(round(r * math.sin(angle) * 64), 64)
        points.append((px, py))
    hull = _hull(points)
    return hull


def _hull(points):
    pts = sorted(set(points))

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower, upper = [], []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def test_e8_polygon_area(rng, benchmark):
    polygons = []
    for count in (4, 5, 6, 8, 10, 12):
        poly = random_convex_polygon(rng, count)
        if len(poly) >= 3:
            polygons.append(poly)

    def run_largest():
        return polygon_area(polygons[-1])

    benchmark(run_largest)

    rows = []
    for poly in polygons:
        via_language = polygon_area(poly)
        via_shoelace = shoelace_area(sort_ccw(list(poly)))
        rows.append(
            [len(poly), str(via_language), str(via_shoelace),
             "yes" if via_language == via_shoelace else "NO"]
        )
    header = ["vertices", "SUM-term area", "shoelace area", "equal"]
    print_table(
        "E8: FO + POLY + SUM polygon area vs shoelace oracle",
        header,
        rows,
    )
    emit("E8", header, rows)
    for poly in polygons:
        assert polygon_area(poly) == shoelace_area(sort_ccw(list(poly)))
