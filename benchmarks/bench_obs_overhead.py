"""OBS — overhead of the instrumentation layer.

Not a paper claim — a contract of the observability subsystem (see
docs/OBSERVABILITY.md): with stats disabled, a span entry/exit and a
counter add must each cost well under a microsecond, and end-to-end
evaluator throughput must be indistinguishable from an uninstrumented
build.  The table reports the measured per-call costs and the
disabled-vs-enabled throughput on a small range-set query.
"""

import time

import pytest

from repro import obs
from repro.core import SumEvaluator, endpoints_range
from repro.db import FiniteInstance, Schema
from repro.logic import Relation, Var

from conftest import print_table
from obs_report import emit

U = Relation("U", 1)


def _per_call_ns(fn, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls * 1e9


def _evaluator_case():
    schema = Schema.make({"U": 1})
    instance = FiniteInstance.make(schema, {"U": list(range(20))})
    rho = endpoints_range("w", U(Var("w")))
    return SumEvaluator(instance), rho


def _range_set_seconds(evaluator, rho, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        evaluator.range_set(rho)
    return time.perf_counter() - start


def test_obs_disabled_overhead(benchmark):
    obs.disable_counting()
    obs.reset()
    assert not obs.tracing_enabled()

    calls = 200_000

    def disabled_span():
        with obs.span("obs.overhead.probe", k=1):
            pass

    def disabled_add():
        obs.add("mc.samples")

    def disabled_observe():
        obs.observe_value("engine.query.volume_s", 0.01)

    span_ns = _per_call_ns(disabled_span, calls)
    add_ns = _per_call_ns(disabled_add, calls)
    hist_ns = _per_call_ns(disabled_observe, calls)
    benchmark.pedantic(disabled_span, rounds=5, iterations=10_000)

    evaluator, rho = _evaluator_case()
    repeats = 50
    _range_set_seconds(evaluator, rho, repeats)  # warm-up
    disabled_s = _range_set_seconds(evaluator, rho, repeats)
    obs.enable_counting()
    enabled_s = _range_set_seconds(evaluator, rho, repeats)
    obs.disable_counting()
    obs.reset()

    ratio = enabled_s / disabled_s
    header = ["probe", "measured", "budget"]
    rows = [
        ["disabled span (ns/call)", f"{span_ns:.0f}", "< 1000"],
        ["disabled counter add (ns/call)", f"{add_ns:.0f}", "< 1000"],
        ["disabled histogram observe (ns/call)", f"{hist_ns:.0f}", "< 1000"],
        ["range_set enabled/disabled ratio", f"{ratio:.3f}", "< 2.0 (CI-safe)"],
    ]
    print_table("OBS: instrumentation overhead", header, rows)
    emit("OBS-overhead", header, rows)

    # The documented guarantee is <1us; assert with headroom for slow CI.
    assert span_ns < 5_000
    assert add_ns < 5_000
    assert hist_ns < 5_000
    # A disabled histogram observation is the same boolean gate as a
    # counter add; pin it to the same cost class (+ headroom for jitter).
    assert hist_ns < 2 * add_ns + 500
    # Counters-on evaluator throughput: generous bound, timing is noisy.
    assert ratio < 2.0
