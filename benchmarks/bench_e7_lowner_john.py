"""E7 — Section 4.3 Remark: convex relative approximation via Loewner-John
ellipsoids.

Paper claim: for convex query outputs in R^k, a relative (c1, c2)
approximation of the volume exists with c1 = (k^k+1)/(2 k^k) - eps and
c2 = (k^k+1)/2 + eps.

Reproduction: random convex polytopes in dimensions k = 2, 3; the MVEE
midpoint estimator's ratio to the *exact* volume (Theorem-3 slicing) must
fall inside the paper's band.  Shape criterion: the band is tight-ish in
2D (c2 = 2.5) and much looser in 3D (c2 = 14) — dimension dependence is
the point of the k^k terms.
"""

from fractions import Fraction

import pytest

from repro.approx import convex_relative_approximation, john_band
from repro.geometry import Polyhedron, formula_to_cells, polytope_volume
from repro.logic import between, variables

from conftest import print_table
from obs_report import emit

x, y, z = variables("x y z")


def random_polytope_2d(rng):
    """A random quadrilateral-ish intersection of halfplanes, nonempty."""
    base = between(0, x, 4) & between(0, y, 4)
    a, b = (Fraction(int(v), 4) for v in rng.integers(1, 8, 2))
    cut = (x + y <= a + b + 4)
    (cell,) = formula_to_cells(base & cut, ("x", "y"))
    return cell


def random_polytope_3d(rng):
    c = Fraction(int(rng.integers(4, 12)), 2)
    body = (
        between(0, x, 3) & between(0, y, 3) & between(0, z, 3)
        & (x + y + z <= c)
    )
    (cell,) = formula_to_cells(body, ("x", "y", "z"))
    return cell


def test_e7_lowner_john(rng, benchmark):
    polytopes = [random_polytope_2d(rng) for _ in range(5)] + [
        random_polytope_3d(rng) for _ in range(4)
    ]

    def run():
        out = []
        for polytope in polytopes:
            exact = polytope_volume(polytope)
            if exact == 0:
                continue
            estimate, (c1, c2) = convex_relative_approximation(polytope)
            out.append((polytope.dimension, float(exact), estimate, c1, c2))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [dim, f"{exact:.4f}", f"{estimate:.4f}", f"{estimate / exact:.3f}",
         f"({c1:.3f}, {c2:.3f})",
         "yes" if c1 - 1e-9 < estimate / exact < c2 + 1e-9 else "NO"]
        for dim, exact, estimate, c1, c2 in results
    ]
    header = ["k", "exact vol", "estimate", "ratio", "paper band (c1, c2)", "in band"]
    print_table(
        "E7: Loewner-John relative approximation of convex volumes",
        header,
        rows,
    )
    emit("E7", header, rows)

    assert results, "need at least one nondegenerate polytope"
    for dim, exact, estimate, c1, c2 in results:
        ratio = estimate / exact
        assert c1 - 1e-9 < ratio < c2 + 1e-9
    # Dimension dependence of the band (the k^k law):
    assert john_band(3)[1] / john_band(2)[1] == pytest.approx((27 + 1) / 2 / 2.5)
