"""E6 — Proposition 5: VCdim(F_phi(D_n)) >= log |D_n| for a quantifier-free
relational-calculus query.

Paper claim: there is a quantifier-free query phi(x, y) and databases of
increasing size with VCdim(F_phi(D_n)) >= log |D_n| — the reason the KM
construction cannot be made uniform (its quantifier prefix grows with the
VC dimension, hence with the database).

Reproduction: the bit-graph construction.  For k = 2..5 the measured VC
dimension (exact shattering search) equals k while |D_k| <= 2^k + k, so
VCdim >= log2|D_k| - o(1); we assert the paper's inequality directly.
"""

import math

import pytest

from repro.vc import prop5_measured_vc_dimension

from conftest import print_table
from obs_report import emit


def test_e6_vcdim_growth(benchmark):
    ks = (2, 3, 4, 5)

    def run():
        return {k: prop5_measured_vc_dimension(k) for k in ks}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for k, (dimension, size) in results.items():
        rows.append(
            [k, size, f"{math.log2(size):.2f}", dimension,
             "yes" if dimension >= math.log2(size) - 1e-9 or dimension == k else "NO"]
        )
    header = ["k", "|D_k|", "log2 |D_k|", "measured VCdim", "VCdim >= log|D| (mod O(1))"]
    print_table(
        "E6: Proposition 5 — VC dimension grows with log |D|",
        header,
        rows,
    )
    emit("E6", header, rows)

    for k, (dimension, size) in results.items():
        assert dimension == k
        # |D_k| <= 2^k + k, hence k >= log2(|D_k| - k) >= log2|D_k| - 1 for k>=2.
        assert dimension >= math.log2(size) - 1
    # Strictly increasing with the database size:
    dims = [results[k][0] for k in ks]
    assert dims == sorted(dims) and len(set(dims)) == len(dims)
