"""E1 — Section 3 example: blow-up of the Karpinski-Macintyre construction.

Paper claim: for the query phi(x1, x2; y1, y2) = U(x1) & U(x2) &
x1 < y1 < x2 & 0 <= y2 <= y1, with U of n = 100 elements and eps = 1/10,
the derandomised approximation formula has **at least 10^9 atomic
subformulae and at least 10^11 quantifiers** (after plugging the database,
which already yields > 2n atoms).

Reproduction: the cost model of :mod:`repro.approx.km_cost` instantiated
on the same query/database, swept over eps and n.  Criterion: the model's
lower bounds dominate the paper's floors at (eps = 1/10, n = 100), and
both counts grow as eps shrinks and n grows.
"""

from fractions import Fraction

import pytest

from repro.approx import km_cost_for_query
from repro.db import FiniteInstance, Schema
from repro.logic import Relation, variables

from conftest import print_table
from obs_report import emit


def _query():
    U = Relation("U", 1)
    x1, x2, y1, y2 = variables("x1 x2 y1 y2")
    return U(x1) & U(x2) & (x1 < y1) & (y1 < x2) & (0 <= y2) & (y2 <= y1)


def _database(n: int) -> FiniteInstance:
    schema = Schema.make({"U": 1})
    return FiniteInstance.make(
        schema, {"U": [Fraction(i, n + 1) for i in range(1, n + 1)]}
    )


def test_e1_km_blowup(benchmark):
    query = _query()
    rows = []
    sweep = [(0.5, 10), (0.25, 10), (0.1, 10), (0.1, 50), (0.1, 100), (0.05, 100)]

    def run_sweep():
        results = []
        for epsilon, n in sweep:
            cost = km_cost_for_query(
                query, _database(n), param_vars=2, point_vars=2, epsilon=epsilon
            )
            results.append((epsilon, n, cost))
        return results

    results = benchmark(run_sweep)

    for epsilon, n, cost in results:
        rows.append(
            [epsilon, n, cost.plugged_atoms, f"{cost.sample_size:.3g}",
             f"{cost.atoms:.3g}", f"{cost.quantifiers:.3g}"]
        )
    header = ["eps", "n", "plugged atoms s0", "sample M", "atoms >=", "quantifiers >="]
    print_table(
        "E1: KM construction size (paper floors at eps=0.1, n=100: "
        "atoms >= 1e9, quantifiers >= 1e11)",
        header,
        rows,
    )
    emit("E1", header, rows)

    headline = next(c for e, n, c in results if e == 0.1 and n == 100)
    # Paper's statements, verified:
    assert headline.plugged_atoms > 2 * 100          # "> 2n atomic subformulae"
    assert headline.atoms >= 10**9                   # ">= 10^9 atoms"
    assert headline.quantifiers >= 10**11            # ">= 10^11 quantifiers"
    # Monotonicity of the blow-up:
    by_eps = [c.atoms for e, n, c in results if n == 10]
    assert by_eps == sorted(by_eps)                  # shrinking eps inflates
    by_n = [c.atoms for e, n, c in results if e == 0.1]
    assert by_n == sorted(by_n)                      # growing n inflates
