"""Benchmark trajectory export: one JSON-lines record per experiment row.

Every ``bench_e*.py`` calls :func:`emit` right after printing its table;
each table row becomes one ``repro.obs/v2`` record carrying the row
values plus a snapshot of the observability counters (and any non-empty
latency histograms) accumulated during the test (cells lifted,
constraints pruned, samples drawn, ...) — the intrinsic complexity
observables, not just wall clock.

Destination: ``$REPRO_OBS_OUT`` if set, else
``benchmarks/out/BENCH_OBS.jsonl`` under the repository root (the
directory is created on demand).  Records append; delete the file to
start a fresh trajectory.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Sequence

from repro import obs

__all__ = ["emit", "output_path"]


def output_path() -> Path:
    env = os.environ.get("REPRO_OBS_OUT")
    if env:
        return Path(env)
    out_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "BENCH_OBS.jsonl"


def emit(
    experiment: str,
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
    extra: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """Append one record per row to the benchmark trajectory file."""
    sink = obs.JsonlSink(str(output_path()))
    records = []
    for index, row in enumerate(rows):
        record = obs.make_record(
            experiment,
            row=dict(zip(header, row)),
            registry=obs.REGISTRY,
            extra={"row_index": index, **(extra or {})},
        )
        records.append(record)
    sink.write_all(records)
    return records
