"""Shared fixtures and reporting helpers for the experiment benchmarks.

Each ``bench_eN_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index (the paper has no numbered tables/figures; the
experiments reproduce its worked example, constructive theorems and
closed-form bounds).  Every module prints the rows it reproduces — run
with ``-s`` to see them — and asserts the reproduction criterion.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(19990531)  # PODS'99


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render an experiment's rows the way the paper would report them."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
