"""Shared fixtures and reporting helpers for the experiment benchmarks.

Each ``bench_eN_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index (the paper has no numbered tables/figures; the
experiments reproduce its worked example, constructive theorems and
closed-form bounds).  Every module prints the rows it reproduces — run
with ``-s`` to see them — and asserts the reproduction criterion.

Counter collection (:mod:`repro.obs`) is enabled around every benchmark
so the ``obs_report.emit`` records carry the intrinsic cost observables
(cells lifted, constraints pruned, samples drawn) alongside each row.
Tracing stays off: span bookkeeping inside timed regions would taint the
pytest-benchmark numbers, while counter increments are plain int adds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(19990531)  # PODS'99


@pytest.fixture(autouse=True)
def _obs_counters():
    """Fresh, enabled counters per benchmark; disabled again afterwards."""
    obs.reset()
    obs.enable_counting()
    yield
    obs.disable_counting()
    obs.reset()


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render an experiment's rows the way the paper would report them.

    Delegates to the one table renderer, :func:`repro.obs.render_table`,
    which also copes with benchmarks that produce zero rows.
    """
    print(obs.render_table(title, header, rows))
