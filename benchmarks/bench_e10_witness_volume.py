"""E10 — Theorem 4 + Proposition 6: uniform probabilistic volume
approximation in FO + POLY + SUM + W.

Paper claims: with the witness operator, a single sample of size
M = max((4/eps) log(2/delta), (C log|D|/eps) log(13/eps)) approximates
VOL_I(phi(a, D)) within eps for *all* parameters a simultaneously, with
probability >= 1 - delta; C is the Proposition 6 constant, instantiable
by Goldberg-Jerrum as C = 16k(p+q)(log(8edps)+1).

Reproduction: a parameterised semi-algebraic query (disks whose radius is
driven by the database); the sup-error over a parameter grid must fall
below eps in >= 1-delta of independent repetitions, and the sample size
must scale like log|D| as the database grows (the Proposition 6 law).
"""

import numpy as np
import pytest

from repro.core import UniformVolumeApproximator, theorem4_sample_size
from repro.db import FiniteInstance, Schema
from repro.logic import Relation, exists_adom, variables
from repro.vc import goldberg_jerrum_constant_for_query

from conftest import print_table
from obs_report import emit

from fractions import Fraction

a, y1, y2, t = variables("a y1 y2 t")
R = Relation("R", 1)


def query():
    """phi(a; y1, y2): (y1, y2) inside the disk of radius r*a centred at
    (1/2, 1/2), with r drawn from the database."""
    return exists_adom(
        t,
        R(t)
        & ((y1 - Fraction(1, 2)) ** 2 + (y2 - Fraction(1, 2)) ** 2
           < (a * t) ** 2),
    )


def true_volume(parameter: float) -> float:
    """VOL_I of phi(parameter, D): a disk of radius parameter/2 centred in
    I^2 (fully inside the cube for parameter <= 1)."""
    import math

    return math.pi * (parameter * 0.5) ** 2


def test_e10_uniform_approximation(rng, benchmark):
    schema = Schema.make({"R": 1})
    instance = FiniteInstance.make(schema, {"R": [Fraction(1, 2)]})
    epsilon, delta = 0.05, 0.2
    grid = [0.2, 0.4, 0.6, 0.8, 1.0]
    repetitions = 10

    def run():
        failures = 0
        sup_errors = []
        for _ in range(repetitions):
            approx = UniformVolumeApproximator(
                query(), instance, ("a",), ("y1", "y2"),
                epsilon=epsilon, delta=delta, rng=rng, sample_size=4000,
            )
            worst = 0.0
            for value in grid:
                truth = true_volume(value)
                estimate = approx.estimate([value])
                worst = max(worst, abs(estimate - truth))
            sup_errors.append(worst)
            if worst >= epsilon:
                failures += 1
        return sup_errors, failures

    sup_errors, failures = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[i, f"{err:.4f}", "yes" if err < epsilon else "NO"]
            for i, err in enumerate(sup_errors)]
    header = ["repetition", "sup-error", "< eps"]
    print_table(
        f"E10a: sup-error over the parameter grid (eps={epsilon}, delta={delta})",
        header,
        rows,
    )
    emit("E10a", header, rows)
    # Theorem 4: failure frequency <= delta (allow one extra for luck).
    assert failures <= max(1, int(delta * repetitions) + 1)


def test_e10_sample_size_scaling(benchmark):
    constant = goldberg_jerrum_constant_for_query(
        query(), point_arity=2, max_relation_arity=1
    )
    sizes = (4, 16, 64, 256, 1024)

    def run():
        return [theorem4_sample_size(0.1, 0.1, constant, n) for n in sizes]

    samples = benchmark.pedantic(run, rounds=1, iterations=1)

    import math

    rows = [
        [n, m, f"{m / math.log2(n):.0f}"]
        for n, m in zip(sizes, samples)
    ]
    header = ["|D|", "M", "M / log2|D|"]
    print_table(
        f"E10b: Theorem 4 sample size vs |D| (C = {constant:.1f})",
        header,
        rows,
    )
    emit("E10b", header, rows)
    # M grows ~ C log|D| / eps * log(13/eps): ratios to log2|D| level off.
    ratios = [m / math.log2(n) for n, m in zip(sizes, samples)]
    assert samples == sorted(samples)
    assert max(ratios) / min(ratios) < 1.05
