"""E9 — Theorem 3: exact volumes of semi-linear sets.

Paper claim: FO + POLY + SUM computes the exact volume of (a) every
schema predicate of a semi-linear database and (b) every FO + LIN query
output, by the slice-interpolate-integrate induction on dimension.

Reproduction: random semi-linear sets (unions of polytopes) in dimensions
1-3 and FO + LIN query outputs over them.  Three computations must agree:
the production slicing path, the dimension-2 literal transcription of the
paper's proof, and floating-point Qhull on the convex cases.  Ablation A2:
the slicing axis does not change the result (Fubini).
"""

from fractions import Fraction

import pytest

from repro.core import volume_2d_fo_poly_sum, volume_of_query, volume_of_relation
from repro.db import FRInstance, Schema
from repro.geometry import (
    convex_hull_volume_float,
    formula_to_cells,
    polytope_volume,
)
from repro.logic import Relation, between, exists, variables

from conftest import print_table
from obs_report import emit

x, y, z = variables("x y z")


def random_union_2d(rng):
    from repro.logic import disjunction

    parts = []
    for _ in range(int(rng.integers(1, 4))):
        x0, x1 = sorted(Fraction(int(v), 8) for v in rng.integers(0, 17, 2))
        y0, y1 = sorted(Fraction(int(v), 8) for v in rng.integers(0, 17, 2))
        if x0 < x1 and y0 < y1:
            parts.append(between(x0, x, x1) & between(y0, y, y1))
    if not parts:
        parts = [between(0, x, 1) & between(0, y, 1)]
    return disjunction(*parts)


def test_e9_agreement_2d(rng, benchmark):
    schema = Schema.make({"P": 2})
    P = Relation("P", 2)
    bodies = [random_union_2d(rng) for _ in range(6)]

    def run():
        out = []
        for body in bodies:
            instance = FRInstance.make(schema, {"P": ((x, y), body)})
            production = volume_of_relation(instance, "P")
            transcription = volume_2d_fo_poly_sum(instance, P(x, y), "x", "y")
            out.append((production, transcription))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [i, str(a), str(b), "yes" if a == b else "NO"]
        for i, (a, b) in enumerate(results)
    ]
    header = ["case", "slicing volume", "proof-path volume", "equal"]
    print_table(
        "E9a: Theorem 3 — production slicing vs literal proof transcription",
        header,
        rows,
    )
    emit("E9a", header, rows)
    for a, b in results:
        assert a == b


def test_e9_query_outputs_and_qhull(rng, benchmark):
    schema = Schema.make({"P": 3})
    P = Relation("P", 3)
    body = (
        between(0, x, 2) & between(0, y, 2) & between(0, z, 2)
        & (x + y + z <= 3)
    )
    instance = FRInstance.make(schema, {"P": ((x, y, z), body)})
    query = P(x, y, z) & (z <= 1)

    def run():
        return volume_of_query(query, instance, ("x", "y", "z"))

    exact = benchmark(run)

    (cell,) = formula_to_cells(
        body & (z <= 1), ("x", "y", "z")
    )
    hull = convex_hull_volume_float(
        [[float(c) for c in v] for v in cell.vertices()]
    )
    rows = [[str(exact), f"{hull:.6f}", f"{abs(float(exact) - hull):.2e}"]]
    header = ["exact (Theorem 3)", "Qhull float", "|difference|"]
    print_table(
        "E9b: FO + LIN query output volume vs Qhull baseline",
        header,
        rows,
    )
    emit("E9b", header, rows)
    assert abs(float(exact) - hull) < 1e-9


def test_e9_axis_ablation(rng, benchmark):
    """A2: the slicing axis is irrelevant (Fubini)."""
    body = (
        between(0, x, 1) & between(0, y, 2) & (y <= 2 - 2 * x + Fraction(1, 2))
    )
    (cell_xy,) = formula_to_cells(body, ("x", "y"))
    (cell_yx,) = formula_to_cells(body, ("y", "x"))

    def run():
        return polytope_volume(cell_xy), polytope_volume(cell_yx)

    volume_xy, volume_yx = benchmark(run)
    header = ["slice along x first", "slice along y first", "equal"]
    rows = [[str(volume_xy), str(volume_yx), "yes" if volume_xy == volume_yx else "NO"]]
    print_table("E9c: slicing-axis ablation (Fubini)", header, rows)
    emit("E9c", header, rows)
    assert volume_xy == volume_yx
